#include "dram/faults.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <unordered_set>

#include "common/check.h"

namespace parbor::dram {

std::uint64_t poisson_draw(Rng& rng, double lambda) {
  if (lambda <= 0.0) return 0;
  PARBOR_CHECK_MSG(lambda < 1e4, "poisson lambda too large for Knuth draw");
  const double limit = std::exp(-lambda);
  std::uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.uniform();
  } while (p > limit);
  return k - 1;
}

namespace {

// Picks `count` distinct columns in [0, cols); returns them sorted.
std::vector<std::uint32_t> pick_columns(Rng& rng, std::size_t cols,
                                        std::uint64_t count,
                                        std::unordered_set<std::uint32_t>& used) {
  std::vector<std::uint32_t> out;
  out.reserve(count);
  std::uint64_t attempts = 0;
  while (out.size() < count && attempts < count * 16 + 64) {
    ++attempts;
    const auto col = static_cast<std::uint32_t>(rng.below(cols));
    if (used.insert(col).second) out.push_back(col);
  }
  std::sort(out.begin(), out.end());
  return out;
}

float jitter(Rng& rng, double base, double sigma) {
  return static_cast<float>(base * rng.lognormal(0.0, sigma));
}

// Builds the coupling profile of the cell at `col`; `outer_avail` flags the
// six outer sources in slot order [l2, r2, l3, r3, l4, r4].
CouplingProfile make_coupling(const FaultModelParams& p, Rng& rng,
                              std::uint32_t col,
                              const bool (&outer_avail)[6]) {
  CouplingProfile c;
  c.phys_col = col;
  c.threshold = 1.0f;
  const double hold =
      p.coupling_min_hold_ms + rng.uniform() * p.coupling_min_hold_spread_ms;
  c.min_hold = SimTime::ms(hold);

  double wsum = p.frac_strong + p.frac_weak + p.frac_tight;
  if (wsum <= 0.0) wsum = 1.0;
  const double u = rng.uniform() * wsum;
  if (u < p.frac_strong) {
    // Strongly coupled: one immediate neighbour alone exceeds the threshold.
    const bool left = rng.bernoulli(p.strong_left_prob);
    const float strong =
        std::max(jitter(rng, 1.15, p.coupling_sigma), 1.02f * c.threshold);
    const float other = jitter(rng, 0.35, p.coupling_sigma);
    c.c_left = left ? strong : other;
    c.c_right = left ? other : strong;
    c.c_left2 = jitter(rng, 0.05, p.coupling_sigma);
    c.c_right2 = jitter(rng, 0.05, p.coupling_sigma);
  } else if (u < p.frac_strong + p.frac_weak) {
    // Weakly coupled: both immediate neighbours needed, neither sufficient.
    const float a = static_cast<float>(rng.uniform(0.52, 0.62));
    const float b = static_cast<float>(1.04 + rng.uniform(0.0, 0.15)) - a;
    c.c_left = a;
    c.c_right = std::min(b, 0.95f);
    if (c.c_left + c.c_right < 1.01f) c.c_right = 1.01f - c.c_left;
    c.c_left2 = jitter(rng, 0.04, p.coupling_sigma);
    c.c_right2 = jitter(rng, 0.04, p.coupling_sigma);
  } else {
    // Tight: immediate neighbours alone stay below threshold; outer
    // contributions are required to cross it.  The tier decides how many
    // outer sources are *all* necessary: dropping any single one of them
    // must fall below the threshold, so a random pattern has to align every
    // relevant bit at once to excite the cell.
    const double tier = rng.uniform();
    int outer_sources = 2;  // shallow: second neighbours only
    if (tier < p.tight_ultra_prob) {
      outer_sources = 6;  // ultra: second + third + fourth
    } else if (tier < p.tight_ultra_prob + p.tight_deep_prob) {
      outer_sources = 4;  // deep: second + third
    }
    // Draw the outer sources first, then size the immediate pair so that the
    // total only clears the threshold by less than the smallest outer
    // source: removing ANY single source drops below the threshold, so a
    // random pattern must align every relevant bit at once.  Only sources
    // that physically exist at this position are used; a cell near a tile
    // edge is effectively a shallower-tier cell.
    const double q = rng.uniform(0.04, 0.07);
    float* slots[6] = {&c.c_left2, &c.c_right2, &c.c_left3,
                       &c.c_right3, &c.c_left4, &c.c_right4};
    double outer_sum = 0.0;
    double outer_min = 1e9;
    int used = 0;
    for (int i = 0; i < 6 && used < outer_sources; ++i) {
      if (!outer_avail[i]) continue;
      const double v = q * rng.uniform(0.92, 1.08);
      *slots[i] = static_cast<float>(v);
      outer_sum += v;
      outer_min = std::min(outer_min, v);
      ++used;
    }
    if (used == 0) {
      // No outer sources at all: fall back to a weakly coupled profile.
      c.c_left = static_cast<float>(rng.uniform(0.52, 0.62));
      c.c_right = 1.02f - c.c_left;
      return c;
    }
    const double slack = outer_min * rng.uniform(0.1, 0.8);
    const double immediate =
        static_cast<double>(c.threshold) + slack - outer_sum;
    c.c_left = static_cast<float>(immediate * rng.uniform(0.4, 0.6));
    c.c_right = static_cast<float>(immediate) - c.c_left;
  }
  return c;
}

}  // namespace

namespace {

// Fills the windowed fire tables of a fully-built plan, or leaves the plan
// non-windowed when any source falls outside the victim+delta shape (spare
// plans) or the row is too narrow for a window.
void build_fire_tables(CompiledCouplingPlan& plan, std::size_t row_bits) {
  constexpr std::uint32_t kWin = CompiledCouplingPlan::kWindow;
  if (row_bits < kWin) return;
  const std::size_t n = plan.victim_count();
  for (std::size_t v = 0; v < n; ++v) {
    for (std::uint32_t k = plan.src_offset[v]; k < plan.src_offset[v + 1];
         ++k) {
      const std::int64_t expect =
          static_cast<std::int64_t>(plan.victim_col[v]) + plan.src_delta[k];
      if (static_cast<std::int64_t>(plan.src_col[k]) != expect) return;
    }
  }

  plan.win_base.resize(n);
  plan.fire_table.assign(n * CompiledCouplingPlan::kTableBytes, 0);
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint32_t vcol = plan.victim_col[v];
    const std::uint32_t base =
        std::min(vcol >= 4 ? vcol - 4 : 0,
                 static_cast<std::uint32_t>(row_bits - kWin));
    plan.win_base[v] = base;
    const std::uint32_t s0 = plan.src_offset[v];
    const std::uint32_t ns = plan.src_offset[v + 1] - s0;
    PARBOR_CHECK(ns <= CompiledCouplingPlan::kPaddedSources);
    // Exact interference sum for every subset of the live sources.  The
    // recursion adds the highest-index member last, so each subset's addends
    // land in ascending slot order — the scalar kernel's exact sequence.
    float sums[1u << CompiledCouplingPlan::kPaddedSources];
    sums[0] = 0.0f;
    for (std::uint32_t m = 1; m < (1u << ns); ++m) {
      const auto h = static_cast<std::uint32_t>(std::bit_width(m) - 1);
      sums[m] = sums[m & ~(1u << h)] + plan.src_coeff[s0 + h];
    }
    // Window positions of the victim and of each live source.
    const std::uint32_t pv = vcol - base;
    std::uint32_t pos[CompiledCouplingPlan::kPaddedSources] = {};
    for (std::uint32_t k = 0; k < ns; ++k) {
      pos[k] = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(vcol) + plan.src_delta[s0 + k] -
          static_cast<std::int64_t>(base));
      PARBOR_CHECK(pos[k] < kWin);
    }
    std::uint8_t* tab =
        plan.fire_table.data() + v * CompiledCouplingPlan::kTableBytes;
    for (std::uint32_t d = 0; d < (1u << kWin); ++d) {
      if ((d >> pv) & 1u) continue;  // victim discharged: invulnerable
      std::uint32_t m = 0;
      for (std::uint32_t k = 0; k < ns; ++k) {
        m |= ((d >> pos[k]) & 1u) << k;
      }
      if (sums[m] >= plan.threshold[v]) tab[d >> 3] |= 1u << (d & 7);
    }
  }
  plan.windowed = true;
}

}  // namespace

CompiledCouplingPlan compile_coupling_plan(
    const std::vector<CouplingProfile>& profiles,
    const VictimResolver& victim_col, const SourceResolver& source_col,
    std::size_t row_bits) {
  // Slot order mirrors the original evaluation loop so the interference sum
  // accumulates in the same order (float addition is not associative).
  struct Slot {
    int delta;
    float CouplingProfile::* coeff;
  };
  static constexpr Slot kSlots[8] = {
      {-1, &CouplingProfile::c_left},  {+1, &CouplingProfile::c_right},
      {-2, &CouplingProfile::c_left2}, {+2, &CouplingProfile::c_right2},
      {-3, &CouplingProfile::c_left3}, {+3, &CouplingProfile::c_right3},
      {-4, &CouplingProfile::c_left4}, {+4, &CouplingProfile::c_right4},
  };
  static_assert(CompiledCouplingPlan::kPaddedSources == 8,
                "padded rows must hold every profile slot");

  // Lay the plan out in final (min_hold-sorted) victim order from the
  // start, so the flat source arrays are emitted as one contiguous prefix
  // walk.  Ties keep generation order, so plans are deterministic.
  const std::size_t n = profiles.size();
  std::vector<std::uint32_t> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    order[i] = static_cast<std::uint32_t>(i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return profiles[a].min_hold < profiles[b].min_hold;
                   });

  CompiledCouplingPlan plan;
  plan.victim_col.reserve(n);
  plan.profile_index.reserve(n);
  plan.threshold.reserve(n);
  plan.min_hold.reserve(n);
  plan.src_offset.reserve(n + 1);
  plan.src_offset.push_back(0);
  plan.pad_col.reserve(n * CompiledCouplingPlan::kPaddedSources);
  plan.pad_coeff.reserve(n * CompiledCouplingPlan::kPaddedSources);
  for (const std::uint32_t idx : order) {
    const CouplingProfile& c = profiles[idx];
    const std::uint32_t vcol = victim_col(c);
    plan.victim_col.push_back(vcol);
    plan.profile_index.push_back(idx);
    plan.threshold.push_back(c.threshold);
    plan.min_hold.push_back(c.min_hold);
    for (const Slot& slot : kSlots) {
      const float coeff = c.*slot.coeff;
      if (coeff == 0.0f) continue;  // adds nothing (coefficients are >= 0)
      const auto src = source_col(c, slot.delta);
      if (!src.has_value()) continue;  // edge / cross-tile / repaired: dead
      plan.src_col.push_back(*src);
      plan.src_coeff.push_back(coeff);
      plan.src_delta.push_back(slot.delta);
      plan.pad_col.push_back(*src);
      plan.pad_coeff.push_back(coeff);
    }
    plan.src_offset.push_back(static_cast<std::uint32_t>(plan.src_col.size()));
    // Pad the fixed-width row: zero coefficients probing the victim's own
    // column (always a valid load) leave the float sum bit-identical.
    while (plan.pad_coeff.size() <
           plan.victim_count() * CompiledCouplingPlan::kPaddedSources) {
      plan.pad_col.push_back(vcol);
      plan.pad_coeff.push_back(0.0f);
    }
  }
  build_fire_tables(plan, row_bits);
  return plan;
}

void evaluate_coupling_plan(const CompiledCouplingPlan& plan, SimTime eff,
                            const BitVec& bits, bool anti,
                            std::vector<std::uint32_t>& out) {
  const std::uint64_t* words = bits.words().data();
  const std::uint64_t anti_bit = anti ? 1u : 0u;
  auto discharged = [&](std::uint32_t col) -> std::uint64_t {
    return ((words[col >> 6] >> (col & 63)) & 1u) ^ anti_bit ^ 1u;
  };
  const std::size_t n = plan.victim_count();
  for (std::size_t v = 0; v < n; ++v) {
    if (eff < plan.min_hold[v]) break;  // sorted: nothing further can arm
    const std::uint32_t vcol = plan.victim_col[v];
    if (discharged(vcol)) continue;  // victim vulnerable only when charged
    float interference = 0.0f;
    for (std::uint32_t k = plan.src_offset[v]; k < plan.src_offset[v + 1];
         ++k) {
      // Branchless: a charged source multiplies its coefficient by 0, which
      // leaves the float sum bit-identical (coefficients are non-negative).
      interference +=
          plan.src_coeff[k] * static_cast<float>(discharged(plan.src_col[k]));
    }
    if (interference >= plan.threshold[v]) out.push_back(vcol);
  }
}

void evaluate_coupling_plan_block(const CompiledCouplingPlan& plan,
                                  SimTime eff, const BitVec& bits, bool anti,
                                  CouplingBlockScratch& scratch,
                                  std::vector<std::uint32_t>& out) {
  const std::size_t n = plan.victim_count();
  if (n == 0) return;
  // One binary search replaces the per-victim early-out: victims are sorted
  // by min_hold, so the armed set is exactly the prefix with min_hold <= eff.
  const std::size_t armed = static_cast<std::size_t>(
      std::upper_bound(plan.min_hold.begin(), plan.min_hold.end(), eff) -
      plan.min_hold.begin());
  if (armed == 0) return;

  const std::uint64_t* words = bits.words().data();
  const std::uint32_t anti_bit = anti ? 1u : 0u;
  auto bit_at = [&](std::uint32_t col) -> std::uint32_t {
    return static_cast<std::uint32_t>((words[col >> 6] >> (col & 63)) & 1u);
  };

  if (plan.windowed) {
    // Float-free path: the nine raw window bits, XORed into discharge space,
    // index the victim's precomputed fire table.  In an anti row charge is
    // the data bit itself, so discharged == ~bit there and == bit otherwise.
    constexpr std::uint32_t kWinMask = (1u << CompiledCouplingPlan::kWindow) - 1;
    const std::uint64_t inv = anti ? 0u : kWinMask;
    const std::uint8_t* tables = plan.fire_table.data();
    const std::uint32_t* bases = plan.win_base.data();
    for (std::size_t v = 0; v < armed; ++v) {
      const std::uint32_t base = bases[v];
      const std::uint32_t sh = base & 63;
      std::uint64_t w = words[base >> 6] >> sh;
      if (sh > 64 - CompiledCouplingPlan::kWindow) {
        w |= words[(base >> 6) + 1] << (64 - sh);
      }
      const auto d = static_cast<std::uint32_t>((w ^ inv) & kWinMask);
      const std::uint8_t* tab =
          tables + v * CompiledCouplingPlan::kTableBytes;
      if ((tab[d >> 3] >> (d & 7)) & 1u) out.push_back(plan.victim_col[v]);
    }
    return;
  }

  // Compact the charged armed victims branchlessly; a discharged victim is
  // invulnerable and its sources are never summed (matching the scalar
  // kernel's skip, and halving the float work on typical half-charged rows).
  scratch.charged.resize(armed);
  std::uint32_t* idx = scratch.charged.data();
  std::size_t m = 0;
  for (std::size_t v = 0; v < armed; ++v) {
    idx[m] = static_cast<std::uint32_t>(v);
    m += bit_at(plan.victim_col[v]) ^ anti_bit;  // charged: bit != anti
  }

  constexpr std::uint32_t P = CompiledCouplingPlan::kPaddedSources;
  const std::uint32_t* pcol = plan.pad_col.data();
  const float* pcoef = plan.pad_coeff.data();
  auto disch = [&](std::uint32_t col) -> float {
    return static_cast<float>(bit_at(col) ^ anti_bit ^ 1u);
  };
  auto commit = [&](std::uint32_t v, float acc) {
    if (acc >= plan.threshold[v]) out.push_back(plan.victim_col[v]);
  };
  // Four victims in flight: four independent accumulator chains hide the
  // FP-add latency the one-victim-at-a-time kernel serialises on.  Each
  // accumulator still adds its own victim's terms in slot order (padding
  // terms are exact +0.0f no-ops), so every float matches the scalar kernel
  // bit for bit, and victims retire in index order, so `out` is identical.
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const std::uint32_t v0 = idx[i], v1 = idx[i + 1];
    const std::uint32_t v2 = idx[i + 2], v3 = idx[i + 3];
    const std::uint32_t* c0 = pcol + v0 * P;
    const std::uint32_t* c1 = pcol + v1 * P;
    const std::uint32_t* c2 = pcol + v2 * P;
    const std::uint32_t* c3 = pcol + v3 * P;
    const float* f0 = pcoef + v0 * P;
    const float* f1 = pcoef + v1 * P;
    const float* f2 = pcoef + v2 * P;
    const float* f3 = pcoef + v3 * P;
    float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
    for (std::uint32_t k = 0; k < P; ++k) {
      a0 += f0[k] * disch(c0[k]);
      a1 += f1[k] * disch(c1[k]);
      a2 += f2[k] * disch(c2[k]);
      a3 += f3[k] * disch(c3[k]);
    }
    commit(v0, a0);
    commit(v1, a1);
    commit(v2, a2);
    commit(v3, a3);
  }
  for (; i < m; ++i) {
    const std::uint32_t v = idx[i];
    const std::uint32_t* c = pcol + v * P;
    const float* f = pcoef + v * P;
    float acc = 0.0f;
    for (std::uint32_t k = 0; k < P; ++k) acc += f[k] * disch(c[k]);
    commit(v, acc);
  }
}

void evaluate_coupling_plan_attributed(
    const CompiledCouplingPlan& plan, SimTime eff, const BitVec& bits,
    bool anti, std::vector<std::uint32_t>& out,
    std::vector<CouplingAttribution>& flips,
    std::vector<CouplingProbe>& probes) {
  // Mirrors evaluate_coupling_plan exactly; the mask bookkeeping must not
  // change the float accumulation, so flip sets stay bit-identical whether
  // or not the ledger observes a read.
  const std::uint64_t* words = bits.words().data();
  const std::uint64_t anti_bit = anti ? 1u : 0u;
  auto discharged = [&](std::uint32_t col) -> std::uint64_t {
    return ((words[col >> 6] >> (col & 63)) & 1u) ^ anti_bit ^ 1u;
  };
  const std::size_t n = plan.victim_count();
  for (std::size_t v = 0; v < n; ++v) {
    if (eff < plan.min_hold[v]) break;  // sorted: nothing further can arm
    const std::uint32_t vcol = plan.victim_col[v];
    if (discharged(vcol)) continue;  // victim vulnerable only when charged
    float interference = 0.0f;
    std::uint32_t mask = 0;
    const std::uint32_t begin = plan.src_offset[v];
    for (std::uint32_t k = begin; k < plan.src_offset[v + 1]; ++k) {
      const std::uint64_t d = discharged(plan.src_col[k]);
      mask |= static_cast<std::uint32_t>(d) << (k - begin);
      interference += plan.src_coeff[k] * static_cast<float>(d);
    }
    probes.push_back({plan.profile_index[v], mask});
    if (interference >= plan.threshold[v]) {
      out.push_back(vcol);
      flips.push_back({vcol, plan.profile_index[v]});
    }
  }
}

RowFaults generate_row_faults(const FaultModelParams& p, std::size_t row_cols,
                              Rng rng,
                              const NeighborExists& neighbor_exists) {
  RowFaults out;
  std::unordered_set<std::uint32_t> used;

  auto exists = [&](std::uint32_t col, int delta) {
    const auto nb = static_cast<std::int64_t>(col) + delta;
    if (nb < 0 || nb >= static_cast<std::int64_t>(row_cols)) return false;
    return !neighbor_exists || neighbor_exists(col, delta);
  };

  const auto n_coupling =
      poisson_draw(rng, p.coupling_cell_rate * static_cast<double>(row_cols));
  for (auto col : pick_columns(rng, row_cols, n_coupling, used)) {
    // A cell can only be a coupling victim if both immediate neighbours
    // exist (otherwise it never sees worst-case interference at all).
    if (!exists(col, -1) || !exists(col, +1)) continue;
    const bool outer_avail[6] = {exists(col, -2), exists(col, +2),
                                 exists(col, -3), exists(col, +3),
                                 exists(col, -4), exists(col, +4)};
    out.coupling.push_back(make_coupling(p, rng, col, outer_avail));
  }

  const auto n_weak =
      poisson_draw(rng, p.weak_cell_rate * static_cast<double>(row_cols));
  for (auto col : pick_columns(rng, row_cols, n_weak, used)) {
    WeakCellProfile w;
    w.phys_col = col;
    w.retention = SimTime::ms(
        rng.uniform(p.weak_retention_min_ms, p.weak_retention_max_ms));
    out.weak.push_back(w);
  }

  const auto n_vrt =
      poisson_draw(rng, p.vrt_cell_rate * static_cast<double>(row_cols));
  for (auto col : pick_columns(rng, row_cols, n_vrt, used)) {
    VrtCellProfile v;
    v.phys_col = col;
    v.leaky_retention = SimTime::ms(p.vrt_leaky_retention_ms);
    v.toggle_prob = static_cast<float>(p.vrt_toggle_prob);
    v.leaky = rng.bernoulli(0.5);
    out.vrt.push_back(v);
  }

  const auto n_marginal =
      poisson_draw(rng, p.marginal_cell_rate * static_cast<double>(row_cols));
  for (auto col : pick_columns(rng, row_cols, n_marginal, used)) {
    MarginalCellProfile m;
    m.phys_col = col;
    m.fail_prob = static_cast<float>(p.marginal_fail_prob);
    m.min_hold = SimTime::ms(p.marginal_min_hold_ms);
    out.marginal.push_back(m);
  }

  const auto n_wordline =
      poisson_draw(rng, p.wordline_cell_rate * static_cast<double>(row_cols));
  for (auto col : pick_columns(rng, row_cols, n_wordline, used)) {
    WordlineCellProfile w;
    w.phys_col = col;
    w.row_delta = rng.bernoulli(0.5) ? 1 : -1;
    w.min_hold = SimTime::ms(p.wordline_min_hold_ms);
    out.wordline.push_back(w);
  }

  return out;
}

}  // namespace parbor::dram
