#include "dram/scramble.h"

#include <algorithm>

#include "common/check.h"

namespace parbor::dram {

std::string vendor_name(Vendor v) {
  switch (v) {
    case Vendor::kLinear:
      return "linear";
    case Vendor::kA:
      return "A";
    case Vendor::kB:
      return "B";
    case Vendor::kC:
      return "C";
  }
  return "?";
}

std::optional<Vendor> vendor_from_name(std::string_view name) {
  if (name == "linear") return Vendor::kLinear;
  if (name == "A") return Vendor::kA;
  if (name == "B") return Vendor::kB;
  if (name == "C") return Vendor::kC;
  return std::nullopt;
}

void Scrambler::finalize(std::vector<std::uint32_t> phys_to_sys,
                         std::vector<std::uint32_t> tile_of) {
  const std::size_t n = phys_to_sys.size();
  PARBOR_CHECK(n > 0);
  PARBOR_CHECK(tile_of.size() == n);
  std::vector<std::uint32_t> inverse(n, static_cast<std::uint32_t>(n));
  for (std::size_t p = 0; p < n; ++p) {
    const std::uint32_t s = phys_to_sys[p];
    PARBOR_CHECK_MSG(s < n, "system address out of range at phys " << p);
    PARBOR_CHECK_MSG(inverse[s] == n,
                     "mapping not injective: system address " << s);
    inverse[s] = static_cast<std::uint32_t>(p);
  }
  for (std::size_t p = 1; p < n; ++p) {
    PARBOR_CHECK_MSG(tile_of[p] >= tile_of[p - 1],
                     "tiles must be contiguous physical ranges");
  }
  phys_to_sys_ = std::move(phys_to_sys);
  sys_to_phys_ = std::move(inverse);
  tile_of_ = std::move(tile_of);
}

std::set<std::int64_t> Scrambler::signed_step_set() const {
  std::set<std::int64_t> out;
  for (std::size_t p = 0; p + 1 < row_bits(); ++p) {
    if (!coupled(p, p + 1)) continue;
    out.insert(static_cast<std::int64_t>(to_system(p + 1)) -
               static_cast<std::int64_t>(to_system(p)));
  }
  return out;
}

std::set<std::int64_t> Scrambler::abs_distance_set() const {
  std::set<std::int64_t> out;
  for (auto d : signed_step_set()) out.insert(d < 0 ? -d : d);
  return out;
}

LinearScrambler::LinearScrambler(std::size_t row_bits) {
  std::vector<std::uint32_t> map(row_bits);
  for (std::size_t i = 0; i < row_bits; ++i) {
    map[i] = static_cast<std::uint32_t>(i);
  }
  finalize(std::move(map), std::vector<std::uint32_t>(row_bits, 0));
}

MotifScrambler::MotifScrambler(std::size_t row_bits, std::size_t stride,
                               std::vector<std::uint32_t> motif,
                               std::string name)
    : name_(std::move(name)) {
  const std::size_t motif_len = motif.size();
  PARBOR_CHECK(stride >= 1 && motif_len >= 1);
  PARBOR_CHECK_MSG(row_bits % (stride * motif_len) == 0,
                   "row_bits must be a multiple of stride*motif length");
  {
    // The motif must itself be a permutation of {0..L-1}.
    std::vector<bool> seen(motif_len, false);
    for (auto m : motif) {
      PARBOR_CHECK(m < motif_len && !seen[m]);
      seen[m] = true;
    }
  }
  // One tile per residue class; each tile holds row_bits/stride cells and
  // covers system addresses {r, r+stride, r+2*stride, ...}.
  const std::size_t units_per_tile = row_bits / stride;
  std::vector<std::uint32_t> phys_to_sys(row_bits);
  std::vector<std::uint32_t> tile_of(row_bits);
  for (std::size_t r = 0; r < stride; ++r) {
    for (std::size_t q = 0; q < units_per_tile; ++q) {
      const std::size_t block = q / motif_len;
      const std::size_t offset = q % motif_len;
      const std::size_t unit = block * motif_len + motif[offset];
      const std::size_t phys = r * units_per_tile + q;
      phys_to_sys[phys] = static_cast<std::uint32_t>(r + stride * unit);
      tile_of[phys] = static_cast<std::uint32_t>(r);
    }
  }
  finalize(std::move(phys_to_sys), std::move(tile_of));
}

namespace {
// Length-16 unit motif with step multiset {±6 x10, ±1 x4, ±2 x2} (including
// the +6 wrap between blocks); in units of 8 this yields system distances
// exactly {±8, ±16, ±48} with ±48 the most frequent — which is what makes
// the 64-bit-region boundary crossings (Fig. 11's {0,±1} at L3) a strong
// signal on vendor A parts.
const std::vector<std::uint32_t> kVendorAMotif = {0, 6, 12, 13, 7, 1, 3, 9,
                                                  15, 14, 8, 2, 4, 5, 11, 10};
}  // namespace

VendorAScrambler::VendorAScrambler(std::size_t row_bits)
    : MotifScrambler(row_bits, /*stride=*/8, kVendorAMotif, "vendorA") {}

VendorBScrambler::VendorBScrambler(std::size_t row_bits) {
  // Tiles of 16 cells: the 8-bit group at system base b is paired with the
  // group at b+64 and walked as a zigzag
  //   b, b+64, b+65, b+1, b+2, b+66, b+67, b+3, ..., b+70, b+71, b+7
  // whose step multiset is {+64 x4, -64 x4, +1 x7}.  Both distances are
  // frequent, no ±1 pair ever straddles an 8-bit region boundary, and no
  // ±64 pair straddles a 512-bit one — which is exactly the per-level
  // behaviour PARBOR measured on vendor B parts (Fig. 11).
  PARBOR_CHECK_MSG(row_bits % 128 == 0,
                   "vendor B needs row_bits divisible by 128");
  std::vector<std::uint32_t> phys_to_sys(row_bits);
  std::vector<std::uint32_t> tile_of(row_bits);
  std::size_t p = 0;
  std::uint32_t tile = 0;
  for (std::size_t block = 0; block < row_bits; block += 128) {
    for (std::size_t g = 0; g < 8; ++g, ++tile) {
      const std::size_t b = block + 8 * g;  // lower group; upper at b+64
      auto emit = [&](std::size_t sys) {
        phys_to_sys[p] = static_cast<std::uint32_t>(sys);
        tile_of[p] = tile;
        ++p;
      };
      emit(b);
      for (std::size_t k = 0; k < 3; ++k) {
        emit(b + 64 + 2 * k);      // +64
        emit(b + 64 + 2 * k + 1);  // +1
        emit(b + 2 * k + 1);       // -64
        emit(b + 2 * k + 2);       // +1
      }
      emit(b + 70);  // +64
      emit(b + 71);  // +1
      emit(b + 7);   // -64
    }
  }
  PARBOR_CHECK(p == row_bits);
  finalize(std::move(phys_to_sys), std::move(tile_of));
}

PipelineScrambler::PipelineScrambler(std::size_t row_bits,
                                     const PipelineScramblerConfig& cfg) {
  PARBOR_CHECK(cfg.groups >= 1 && cfg.burst_bits >= cfg.groups);
  PARBOR_CHECK_MSG(cfg.burst_bits % cfg.groups == 0,
                   "burst must split evenly into GSA groups");
  const std::size_t group_bits = cfg.burst_bits / cfg.groups;
  PARBOR_CHECK_MSG(!cfg.pair_swap || group_bits % 2 == 0,
                   "pair swapping needs an even number of bits per group");
  PARBOR_CHECK_MSG(row_bits % cfg.burst_bits == 0,
                   "row must hold a whole number of bursts");
  const std::size_t bursts = row_bits / cfg.burst_bits;
  const std::size_t array_cells = bursts * group_bits;

  // System bit s arrives in burst b at within-burst offset o; GSA group
  // g = o / group_bits routes it to cell array g; within the array it lands
  // at column b*group_bits + j (j = o % group_bits), with adjacent bits
  // swapped when the LSA stage alternates top/bottom.
  std::vector<std::uint32_t> phys_to_sys(row_bits);
  std::vector<std::uint32_t> tile_of(row_bits);
  for (std::size_t s = 0; s < row_bits; ++s) {
    const std::size_t b = s / cfg.burst_bits;
    const std::size_t o = s % cfg.burst_bits;
    const std::size_t g = o / group_bits;
    std::size_t j = o % group_bits;
    if (cfg.pair_swap) j ^= 1;
    const std::size_t phys = g * array_cells + b * group_bits + j;
    phys_to_sys[phys] = static_cast<std::uint32_t>(s);
    tile_of[phys] = static_cast<std::uint32_t>(g);
  }
  finalize(std::move(phys_to_sys), std::move(tile_of));
}

VendorCScrambler::VendorCScrambler(std::size_t row_bits) {
  // Two kinds of tiles (the cell arrays on either side of the global
  // sense-amplifier stripe are wired differently):
  //  * four "pair" tiles cover residues {2t, 2t+1} (mod 16) on two rails,
  //    walked with +49/-33 hops (step multiset dominated by ±33/±49);
  //  * eight "single" tiles cover one residue r in [8, 16) each, walked
  //    linearly in units of 16 (every step +16).
  // Together the physically-adjacent distance set is {±16, ±33, ±49} with
  // every member frequent.
  constexpr std::size_t kStride = 16;
  PARBOR_CHECK_MSG(row_bits % kStride == 0 && row_bits / kStride >= 4,
                   "vendor C needs row_bits divisible by 16 and >= 64");
  const std::size_t columns = row_bits / kStride;  // cells per residue class
  std::vector<std::uint32_t> phys_to_sys(row_bits);
  std::vector<std::uint32_t> tile_of(row_bits);
  std::size_t j = 0;
  std::uint32_t tile = 0;

  // Pair tiles: residues (0,1), (2,3), (4,5), (6,7).
  for (std::size_t t = 0; t < 4; ++t, ++tile) {
    const std::size_t r = 2 * t;
    auto emit = [&](std::size_t col, std::size_t rail) {
      phys_to_sys[j] = static_cast<std::uint32_t>(kStride * col + r + rail);
      tile_of[j] = tile;
      ++j;
    };
    // Prologue: (0,1) -> (1,1) -> (2,1), steps +16, +16.
    emit(0, 1);
    emit(1, 1);
    emit(2, 1);
    // Body: ... -33 -> (i,0) -> +49 -> (i+3,1) -> -33 -> (i+1,0) ...
    for (std::size_t i = 0; i + 3 < columns; ++i) {
      emit(i, 0);
      emit(i + 3, 1);
    }
    // Epilogue: (K-3,0) -> (K-2,0) -> (K-1,0), steps -33 then +16, +16.
    emit(columns - 3, 0);
    emit(columns - 2, 0);
    emit(columns - 1, 0);
  }

  // Single tiles: residues 8..15, linear stride-16 walks (every step +16).
  for (std::size_t r = 8; r < 16; ++r, ++tile) {
    for (std::size_t col = 0; col < columns; ++col) {
      phys_to_sys[j] = static_cast<std::uint32_t>(kStride * col + r);
      tile_of[j] = tile;
      ++j;
    }
  }
  PARBOR_CHECK(j == row_bits);
  finalize(std::move(phys_to_sys), std::move(tile_of));
}

std::unique_ptr<Scrambler> make_scrambler(Vendor vendor, std::size_t row_bits) {
  switch (vendor) {
    case Vendor::kLinear:
      return std::make_unique<LinearScrambler>(row_bits);
    case Vendor::kA:
      return std::make_unique<VendorAScrambler>(row_bits);
    case Vendor::kB:
      return std::make_unique<VendorBScrambler>(row_bits);
    case Vendor::kC:
      return std::make_unique<VendorCScrambler>(row_bits);
  }
  PARBOR_CHECK_MSG(false, "unknown vendor");
  return nullptr;
}

}  // namespace parbor::dram
