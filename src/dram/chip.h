// A DRAM chip: banks + the vendor's address scrambler + temperature.
//
// All public access is in *system* address space (what the memory controller
// sees); the chip permutes to physical columns internally.  A fast path is
// provided for broadcasting one pre-permuted pattern to many rows, which is
// what every test campaign does.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/bitvec.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "dram/bank.h"
#include "dram/faults.h"
#include "dram/scramble.h"

namespace parbor::dram {

struct ChipConfig {
  Vendor vendor = Vendor::kA;
  // When set, overrides `vendor`: builds the chip around a caller-supplied
  // mapping (e.g. the Fig. 5 PipelineScrambler or a fuzzed motif).
  std::function<std::unique_ptr<Scrambler>(std::size_t row_bits)>
      custom_scrambler;
  std::uint32_t banks = 1;
  std::uint32_t rows = 256;
  std::uint32_t row_bits = 8192;
  std::uint32_t spare_cols = 16;
  std::uint32_t remapped_cols = 2;
  double spare_coupling_rate = 0.0;
  FaultModelParams faults;
  double temperature_c = 45.0;
};

class Chip {
 public:
  Chip(const ChipConfig& config, Rng rng);

  const ChipConfig& config() const { return config_; }
  const Scrambler& scrambler() const { return *scrambler_; }
  std::uint32_t banks() const { return config_.banks; }
  std::uint32_t rows() const { return config_.rows; }
  std::uint32_t row_bits() const { return config_.row_bits; }

  // Retention scaling: DRAM retention roughly halves per +10 C (paper §6).
  void set_temperature(double celsius) { config_.temperature_c = celsius; }
  double temperature() const { return config_.temperature_c; }
  double temp_factor() const;

  // --- system-address-space access -------------------------------------
  void write_row(std::uint32_t bank, std::uint32_t row, const BitVec& sys_bits,
                 SimTime now);
  BitVec read_row(std::uint32_t bank, std::uint32_t row, SimTime now);
  // Destructive read returning only the *system* bit positions that flipped.
  std::vector<std::uint32_t> read_row_flips(std::uint32_t bank,
                                            std::uint32_t row, SimTime now);
  // Allocation-free variant: appends this read's flipped system bits to
  // `out` (the per-read tail stays sorted by physical column).
  void read_row_flips_append(std::uint32_t bank, std::uint32_t row,
                             SimTime now, std::vector<std::uint32_t>& out);
  // Batched variant over one bank: reads `count` rows in order, row i at
  // clock `nows[i]`, through Bank::read_rows_flips (block coupling kernel,
  // shared scratch).  Appends flipped system bits to `out`; `row_ends[i]`
  // records the absolute `out` size after row i.  Bit-identical to `count`
  // read_row_flips_append calls.
  void read_rows_flips_append(std::uint32_t bank, const std::uint32_t* rows,
                              const SimTime* nows, std::size_t count,
                              std::vector<std::uint32_t>& out,
                              std::vector<std::uint32_t>& row_ends);

  // --- broadcast fast path ----------------------------------------------
  BitVec permute_to_physical(const BitVec& sys_bits) const;
  void write_row_physical(std::uint32_t bank, std::uint32_t row,
                          const BitVec& phys_bits, SimTime now);

  Bank& bank(std::uint32_t b) { return banks_[b]; }

 private:
  ChipConfig config_;
  std::unique_ptr<Scrambler> scrambler_;
  std::vector<Bank> banks_;
};

}  // namespace parbor::dram
