#include "dram/chip.h"

#include <cmath>

#include "common/check.h"

namespace parbor::dram {

Chip::Chip(const ChipConfig& config, Rng rng)
    : config_(config),
      scrambler_(config.custom_scrambler
                     ? config.custom_scrambler(config.row_bits)
                     : make_scrambler(config.vendor, config.row_bits)) {
  PARBOR_CHECK(scrambler_ != nullptr &&
               scrambler_->row_bits() == config_.row_bits);
  BankConfig bank_config;
  bank_config.rows = config_.rows;
  bank_config.row_bits = config_.row_bits;
  bank_config.spare_cols = config_.spare_cols;
  bank_config.remapped_cols = config_.remapped_cols;
  bank_config.spare_coupling_rate = config_.spare_coupling_rate;
  banks_.reserve(config_.banks);
  for (std::uint32_t b = 0; b < config_.banks; ++b) {
    banks_.emplace_back(bank_config, config_.faults, scrambler_.get(),
                        rng.fork(b));
  }
}

double Chip::temp_factor() const {
  return std::exp2((config_.temperature_c - 45.0) / 10.0);
}

BitVec Chip::permute_to_physical(const BitVec& sys_bits) const {
  PARBOR_CHECK(sys_bits.size() == config_.row_bits);
  BitVec phys(config_.row_bits, false);
  for (std::size_t s = 0; s < config_.row_bits; ++s) {
    if (sys_bits.get(s)) phys.set(scrambler_->to_physical(s), true);
  }
  return phys;
}

void Chip::write_row(std::uint32_t bank, std::uint32_t row,
                     const BitVec& sys_bits, SimTime now) {
  PARBOR_CHECK(bank < config_.banks);
  banks_[bank].write_row(row, permute_to_physical(sys_bits), now);
}

void Chip::write_row_physical(std::uint32_t bank, std::uint32_t row,
                              const BitVec& phys_bits, SimTime now) {
  PARBOR_CHECK(bank < config_.banks);
  banks_[bank].write_row(row, phys_bits, now);
}

BitVec Chip::read_row(std::uint32_t bank, std::uint32_t row, SimTime now) {
  PARBOR_CHECK(bank < config_.banks);
  const BitVec phys = banks_[bank].read_row(row, now, temp_factor());
  BitVec sys(config_.row_bits, false);
  for (std::size_t p = 0; p < config_.row_bits; ++p) {
    if (phys.get(p)) sys.set(scrambler_->to_system(p), true);
  }
  return sys;
}

std::vector<std::uint32_t> Chip::read_row_flips(std::uint32_t bank,
                                                std::uint32_t row,
                                                SimTime now) {
  std::vector<std::uint32_t> flips;
  read_row_flips_append(bank, row, now, flips);
  return flips;
}

void Chip::read_row_flips_append(std::uint32_t bank, std::uint32_t row,
                                 SimTime now,
                                 std::vector<std::uint32_t>& out) {
  PARBOR_CHECK(bank < config_.banks);
  const std::size_t base = out.size();
  banks_[bank].read_row_flips_append(row, now, temp_factor(), out);
  for (std::size_t i = base; i < out.size(); ++i) {
    out[i] = static_cast<std::uint32_t>(scrambler_->to_system(out[i]));
  }
}

void Chip::read_rows_flips_append(std::uint32_t bank,
                                  const std::uint32_t* rows,
                                  const SimTime* nows, std::size_t count,
                                  std::vector<std::uint32_t>& out,
                                  std::vector<std::uint32_t>& row_ends) {
  PARBOR_CHECK(bank < config_.banks);
  const std::size_t base = out.size();
  banks_[bank].read_rows_flips(rows, nows, count, temp_factor(), out,
                               row_ends);
  for (std::size_t i = base; i < out.size(); ++i) {
    out[i] = static_cast<std::uint32_t>(scrambler_->to_system(out[i]));
  }
}

}  // namespace parbor::dram
