// A DRAM module (DIMM): a set of chips sharing vendor, geometry, and
// generation, plus the per-vendor configuration presets used to build the
// paper's 18-module test population (A1..A6, B1..B6, C1..C6).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dram/chip.h"
#include "dram/scramble.h"

namespace parbor::dram {

struct ModuleConfig {
  std::string name = "A1";
  std::uint32_t chips = 8;
  ChipConfig chip;
  std::uint64_t seed = 1;
};

class Module {
 public:
  explicit Module(const ModuleConfig& config);

  const ModuleConfig& config() const { return config_; }
  const std::string& name() const { return config_.name; }
  Vendor vendor() const { return config_.chip.vendor; }
  std::uint32_t chip_count() const {
    return static_cast<std::uint32_t>(chips_.size());
  }
  Chip& chip(std::uint32_t c) { return chips_[c]; }
  const Chip& chip(std::uint32_t c) const { return chips_[c]; }

  void set_temperature(double celsius);

  // Total number of cells across all chips/banks/rows (for rate reporting).
  std::uint64_t total_cells() const;

 private:
  ModuleConfig config_;
  std::vector<Chip> chips_;
};

// Experiment scale: the paper tests 2 GB modules (8 chips x 8 banks x 32K
// rows x 8K columns).  Simulating that end-to-end is unnecessary — every
// observable PARBOR uses is per-row and rate-based — so the default
// experiment geometry shrinks rows/banks while keeping the 8K-bit row intact
// (the row is the unit the algorithm actually probes).
enum class Scale {
  kTiny,    // 1 chip,  1 bank,   64 rows  (unit tests)
  kSmall,   // 2 chips, 1 bank,  128 rows  (integration tests)
  kMedium,  // 8 chips, 1 bank,  256 rows  (default bench scale)
  kLarge,   // 8 chips, 2 banks, 512 rows  (slow benches)
};

// Stable scale names ("tiny", "small", "medium", "large") and their
// inverse; fleet manifests and CLI flags round-trip scales through these.
const char* scale_name(Scale scale);
std::optional<Scale> scale_from_name(std::string_view name);

// Builds the configuration of module `index` (1-based, 1..6) of a vendor,
// reproducing the paper's population structure: per-vendor fault-model
// presets plus per-module generation variation so that absolute failure
// counts spread the way Fig. 12's do (C most vulnerable, B with the largest
// share of non-data-dependent noise).
ModuleConfig make_module_config(Vendor vendor, int index, Scale scale,
                                std::uint64_t seed_base = 0x5eed);

// All 18 modules of the paper's population at the given scale.
std::vector<ModuleConfig> make_population(Scale scale,
                                          std::uint64_t seed_base = 0x5eed);

}  // namespace parbor::dram
