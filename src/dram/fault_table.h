// Injected-fault table enumeration for the provenance ledger.
//
// Walks every row of a module's ground-truth fault population (forcing lazy
// generation where needed — safe, because populations are pure functions of
// the module seed) and records one ledger FaultRecord per live injected
// fault, with the same FaultId packing the bank read path uses for flip
// attribution.  Coupling faults are taken from the COMPILED plans, so the
// recorded source offsets are exactly the live sources the read path
// evaluates (tile boundaries and repaired columns already baked in).
#pragma once

#include <cstdint>

#include "dram/module.h"

namespace parbor::dram {

// Records the module metadata line plus every live injected fault of
// `module` into the global FlipLedger under job index `job`.  No-op while
// the ledger is disabled.  `campaign` labels the module record (free text,
// e.g. the engine's campaign kind).
void record_fault_table(Module& module, std::uint32_t job,
                        const std::string& campaign);

}  // namespace parbor::dram
