#include "dram/fault_table.h"

#include "common/ledger/ledger.h"

namespace parbor::dram {

namespace {

void record_coupling_plan(ledger::FlipLedger& led, std::uint32_t job,
                          const Scrambler& scrambler,
                          const CompiledCouplingPlan& plan, std::uint32_t chip,
                          std::uint32_t bank, std::uint32_t row, bool spare) {
  for (std::size_t v = 0; v < plan.victim_count(); ++v) {
    ledger::FaultRecord rec;
    rec.job = job;
    rec.id = ledger::pack_fault_id({chip, bank, row, spare,
                                    ledger::Mechanism::kCoupling,
                                    plan.profile_index[v]});
    rec.victim_col = plan.victim_col[v];
    rec.sys_bit =
        static_cast<std::uint32_t>(scrambler.to_system(plan.victim_col[v]));
    rec.hold_ms = plan.min_hold[v].milliseconds();
    rec.threshold = plan.threshold[v];
    rec.deltas.reserve(plan.src_offset[v + 1] - plan.src_offset[v]);
    for (std::uint32_t k = plan.src_offset[v]; k < plan.src_offset[v + 1];
         ++k) {
      rec.deltas.push_back(plan.src_delta[k]);
    }
    led.record_fault(rec);
  }
}

}  // namespace

void record_fault_table(Module& module, std::uint32_t job,
                        const std::string& campaign) {
  ledger::FlipLedger& led = ledger::FlipLedger::global();
  if (!led.enabled()) return;

  led.record_module({job, module.name(),
                     std::string(vendor_name(module.vendor())), campaign});

  for (std::uint32_t c = 0; c < module.chip_count(); ++c) {
    Chip& chip = module.chip(c);
    const Scrambler& scrambler = chip.scrambler();
    for (std::uint32_t b = 0; b < chip.banks(); ++b) {
      Bank& bank = chip.bank(b);
      for (std::uint32_t r = 0; r < bank.rows(); ++r) {
        record_coupling_plan(led, job, scrambler, bank.compiled_coupling(r),
                             c, b, r, false);
        if (!bank.remapped_columns().empty()) {
          record_coupling_plan(led, job, scrambler,
                               bank.compiled_spare_coupling(r), c, b, r,
                               true);
        }
        const RowFaults& faults = bank.row_faults(r);
        auto base_record = [&](ledger::Mechanism mech, std::uint32_t ordinal,
                               std::uint32_t col, double hold_ms) {
          ledger::FaultRecord rec;
          rec.job = job;
          rec.id = ledger::pack_fault_id({c, b, r, false, mech, ordinal});
          rec.victim_col = col;
          rec.sys_bit = static_cast<std::uint32_t>(scrambler.to_system(col));
          rec.hold_ms = hold_ms;
          return rec;
        };
        for (std::size_t i = 0; i < faults.weak.size(); ++i) {
          const WeakCellProfile& w = faults.weak[i];
          led.record_fault(base_record(ledger::Mechanism::kWeak,
                                       static_cast<std::uint32_t>(i),
                                       w.phys_col,
                                       w.retention.milliseconds()));
        }
        for (std::size_t i = 0; i < faults.vrt.size(); ++i) {
          const VrtCellProfile& v = faults.vrt[i];
          led.record_fault(base_record(ledger::Mechanism::kVrt,
                                       static_cast<std::uint32_t>(i),
                                       v.phys_col,
                                       v.leaky_retention.milliseconds()));
        }
        for (std::size_t i = 0; i < faults.marginal.size(); ++i) {
          const MarginalCellProfile& m = faults.marginal[i];
          led.record_fault(base_record(ledger::Mechanism::kMarginal,
                                       static_cast<std::uint32_t>(i),
                                       m.phys_col,
                                       m.min_hold.milliseconds()));
        }
        for (std::size_t i = 0; i < faults.wordline.size(); ++i) {
          const WordlineCellProfile& w = faults.wordline[i];
          ledger::FaultRecord rec =
              base_record(ledger::Mechanism::kWordline,
                          static_cast<std::uint32_t>(i), w.phys_col,
                          w.min_hold.milliseconds());
          rec.row_delta = w.row_delta;
          led.record_fault(rec);
        }
      }
    }
  }
}

}  // namespace parbor::dram
