#include "dram/module.h"

#include "common/check.h"
#include "common/rng.h"

namespace parbor::dram {

Module::Module(const ModuleConfig& config) : config_(config) {
  Rng rng(config.seed);
  chips_.reserve(config.chips);
  for (std::uint32_t c = 0; c < config.chips; ++c) {
    chips_.emplace_back(config.chip, rng.fork(c));
  }
}

const char* scale_name(Scale scale) {
  switch (scale) {
    case Scale::kTiny: return "tiny";
    case Scale::kSmall: return "small";
    case Scale::kMedium: return "medium";
    case Scale::kLarge: return "large";
  }
  return "?";
}

std::optional<Scale> scale_from_name(std::string_view name) {
  if (name == "tiny") return Scale::kTiny;
  if (name == "small") return Scale::kSmall;
  if (name == "medium") return Scale::kMedium;
  if (name == "large") return Scale::kLarge;
  return std::nullopt;
}

void Module::set_temperature(double celsius) {
  for (auto& chip : chips_) chip.set_temperature(celsius);
}

std::uint64_t Module::total_cells() const {
  return static_cast<std::uint64_t>(config_.chips) * config_.chip.banks *
         config_.chip.rows * config_.chip.row_bits;
}

namespace {

void apply_scale(ModuleConfig& m, Scale scale) {
  switch (scale) {
    case Scale::kTiny:
      m.chips = 1;
      m.chip.banks = 1;
      m.chip.rows = 64;
      break;
    case Scale::kSmall:
      m.chips = 2;
      m.chip.banks = 1;
      m.chip.rows = 128;
      break;
    case Scale::kMedium:
      m.chips = 8;
      m.chip.banks = 1;
      m.chip.rows = 256;
      break;
    case Scale::kLarge:
      m.chips = 8;
      m.chip.banks = 2;
      m.chip.rows = 512;
      break;
  }
}

// Vendor presets.  The absolute densities are calibrated for the reduced
// experiment geometry (see DESIGN.md): they land the per-module failure
// counts and PARBOR-vs-random deltas in the ranges Fig. 12/13 report.
void apply_vendor(ModuleConfig& m, Vendor vendor) {
  FaultModelParams& f = m.chip.faults;
  m.chip.vendor = vendor;
  switch (vendor) {
    case Vendor::kLinear:
    case Vendor::kA:
      f.coupling_cell_rate = 2.4e-4;
      f.frac_strong = 0.45;
      f.frac_weak = 0.10;
      f.frac_tight = 0.45;
      f.tight_deep_prob = 0.30;
      f.tight_ultra_prob = 0.65;
      f.weak_cell_rate = 3e-5;
      f.vrt_cell_rate = 4e-6;
      f.marginal_cell_rate = 8e-6;
      m.chip.remapped_cols = 2;
      m.chip.spare_coupling_rate = 0.001;
      break;
    case Vendor::kB:
      f.coupling_cell_rate = 2.0e-4;
      // Vendor B's small (16-cell) tiles degrade outer-neighbour coupling
      // near tile edges, so a larger tight share is needed for the same
      // observable tight-cell population.
      f.frac_strong = 0.35;
      f.frac_weak = 0.05;
      f.frac_tight = 0.60;
      f.tight_deep_prob = 0.30;
      f.tight_ultra_prob = 0.65;
      // Vendor B carries noticeably more non-data-dependent noise (VRT and
      // marginal cells) and more repaired columns, which is what gives B1
      // its ~5% random-only slice in Fig. 13 and the visible noise bars in
      // Fig. 14.
      f.weak_cell_rate = 1e-5;
      f.vrt_cell_rate = 6e-5;
      f.marginal_cell_rate = 1e-5;
      f.wordline_cell_rate = 2e-6;
      m.chip.remapped_cols = 8;
      m.chip.spare_coupling_rate = 0.002;
      break;
    case Vendor::kC:
      f.coupling_cell_rate = 1.1e-3;
      f.frac_strong = 0.45;
      f.frac_weak = 0.10;
      f.frac_tight = 0.45;
      f.tight_deep_prob = 0.30;
      f.tight_ultra_prob = 0.65;
      f.weak_cell_rate = 6e-5;
      f.vrt_cell_rate = 6e-6;
      f.marginal_cell_rate = 1.2e-5;
      m.chip.remapped_cols = 3;
      m.chip.spare_coupling_rate = 0.0015;
      break;
  }
}

}  // namespace

ModuleConfig make_module_config(Vendor vendor, int index, Scale scale,
                                std::uint64_t seed_base) {
  PARBOR_CHECK(index >= 1 && index <= 6);
  ModuleConfig m;
  m.name = vendor_name(vendor) + std::to_string(index);
  apply_vendor(m, vendor);
  apply_scale(m, scale);
  // Per-module generation variation: later module indices model newer (more
  // scaled, more vulnerable) parts, spreading the absolute failure counts.
  const double gen = 0.45 + 0.22 * static_cast<double>(index - 1);
  m.chip.faults.coupling_cell_rate *= gen;
  m.chip.faults.weak_cell_rate *= gen;
  // Noise classes vary less with generation.
  m.chip.faults.marginal_cell_rate *= 0.8 + 0.08 * static_cast<double>(index);
  // Tight-cell composition varies chip to chip with no particular trend,
  // which is what spreads Fig. 12's per-module increase over 2-55%.
  // (Index 1 keeps the nominal mix: Figs. 13-15 study the *1 modules.)
  static constexpr double kUltraMult[6] = {1.0, 0.75, 0.95, 0.55, 0.85, 0.10};
  static constexpr double kTightMult[6] = {1.0, 0.90, 0.95, 0.80, 0.90, 0.50};
  m.chip.faults.tight_ultra_prob *= kUltraMult[index - 1];
  const double tight_scale = kTightMult[index - 1];
  m.chip.faults.frac_strong += m.chip.faults.frac_tight * (1.0 - tight_scale);
  m.chip.faults.frac_tight *= tight_scale;
  m.seed = seed_base * 1315423911ULL + static_cast<std::uint64_t>(index) +
           (static_cast<std::uint64_t>(vendor) << 32);
  return m;
}

std::vector<ModuleConfig> make_population(Scale scale,
                                          std::uint64_t seed_base) {
  std::vector<ModuleConfig> out;
  for (Vendor v : {Vendor::kA, Vendor::kB, Vendor::kC}) {
    for (int i = 1; i <= 6; ++i) {
      out.push_back(make_module_config(v, i, scale, seed_base));
    }
  }
  return out;
}

}  // namespace parbor::dram
