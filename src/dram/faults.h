// DRAM failure models.
//
// The observable PARBOR works from is "bit i of row r read back flipped
// after the row content sat untouched for t ms".  This header models every
// failure class the paper discusses:
//
//  * data-dependent (coupling) failures — parasitic bitline-coupling between
//    physically adjacent cells (§2.3).  Each vulnerable cell draws coupling
//    coefficients to its immediate and second physical neighbours from a
//    process-variation distribution; it fails when the charge-domain
//    interference exceeds its threshold after a long-enough hold.
//      - strongly coupled: one immediate coefficient alone >= threshold,
//      - weakly coupled: both immediate neighbours needed,
//      - tight: immediate neighbours alone are not enough; second-neighbour
//        contributions must also line up (these are the cells random-pattern
//        testing tends to miss, driving Figs. 12/13).
//  * weak (retention) cells — fail after their retention time regardless of
//    neighbour content.
//  * VRT cells — toggle between a normal and a leaky state at random; leaky
//    state behaves like a weak cell (variable retention time).
//  * marginal cells — hold barely enough charge; fail probabilistically on
//    long holds irrespective of data.
//  * soft errors — rare random per-read bit flips.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/bitvec.h"
#include "common/rng.h"
#include "common/sim_time.h"

namespace parbor::dram {

// Per-cell coupling fault.  Coefficients are in "interference units"; a cell
// fails when the summed interference from oppositely-charged neighbours
// reaches `threshold` (nominally 1.0).
struct CouplingProfile {
  std::uint32_t phys_col = 0;
  float c_left = 0.0f;       // immediate left physical neighbour
  float c_right = 0.0f;      // immediate right physical neighbour
  float c_left2 = 0.0f;      // second left neighbour
  float c_right2 = 0.0f;     // second right neighbour
  float c_left3 = 0.0f;      // third left neighbour
  float c_right3 = 0.0f;     // third right neighbour
  float c_left4 = 0.0f;      // fourth left neighbour
  float c_right4 = 0.0f;     // fourth right neighbour
  float threshold = 1.0f;
  // Minimum hold time before the coupling failure can manifest, at the
  // reference temperature (45 C).
  SimTime min_hold;

  bool strongly_coupled() const {
    return c_left >= threshold || c_right >= threshold;
  }
  bool weakly_coupled() const {
    return !strongly_coupled() && c_left + c_right >= threshold;
  }
  float total_coupling() const {
    return c_left + c_right + c_left2 + c_right2 + c_left3 + c_right3 +
           c_left4 + c_right4;
  }
  // Needs outer-neighbour contributions on top of both immediate ones.
  bool tight() const {
    return c_left + c_right < threshold && total_coupling() >= threshold;
  }
};

struct WeakCellProfile {
  std::uint32_t phys_col = 0;
  SimTime retention;  // at reference temperature
};

struct VrtCellProfile {
  std::uint32_t phys_col = 0;
  SimTime leaky_retention;
  float toggle_prob = 0.0f;  // per read access to the row
  bool leaky = false;        // mutable state machine
};

struct MarginalCellProfile {
  std::uint32_t phys_col = 0;
  float fail_prob = 0.0f;  // per qualifying (long-hold) read
  SimTime min_hold;
};

// Wordline-coupled cell: fails when the cell at the same column of an
// adjacent row holds the opposite charge (direction fixed per cell by
// process variation: -1 = row above, +1 = row below).
struct WordlineCellProfile {
  std::uint32_t phys_col = 0;
  int row_delta = 1;
  SimTime min_hold;
};

// Population rates and distribution parameters; one instance per module
// (vendor + generation), consumed by the per-row generator.
struct FaultModelParams {
  // Expected density of coupling-vulnerable cells, per cell.
  double coupling_cell_rate = 3e-4;
  // Mixture weights among coupling cells (normalised internally).
  double frac_strong = 0.50;
  double frac_weak = 0.28;
  double frac_tight = 0.22;
  // Among strongly coupled cells, probability the strong side is the left
  // neighbour (the rest are right-coupled).
  double strong_left_prob = 0.5;
  // Tightness tiers control how many aligned bits a random pattern needs to
  // excite the cell (and therefore how often random testing misses it):
  // shallow tight cells need the second neighbours (5 aligned bits), deep
  // ones additionally the third (7 bits), ultra ones also the fourth
  // (9 bits).  Probabilities select the tier; shallow is the remainder.
  double tight_deep_prob = 0.45;
  double tight_ultra_prob = 0.40;
  // Spread (lognormal sigma) of coupling coefficients around their class
  // target; adds per-cell margin diversity.
  double coupling_sigma = 0.12;
  // Hold time required before coupling failures manifest (reference temp).
  double coupling_min_hold_ms = 128.0;
  double coupling_min_hold_spread_ms = 64.0;

  double weak_cell_rate = 4e-5;
  double weak_retention_min_ms = 64.0;
  double weak_retention_max_ms = 3500.0;

  // VRT state toggles are rare enough that a cell typically stays in one
  // state for a whole test campaign — which is how VRT cells end up
  // detected by one campaign and not another (Fig. 13's only-random slice).
  double vrt_cell_rate = 6e-6;
  double vrt_toggle_prob = 0.002;
  double vrt_leaky_retention_ms = 900.0;

  double marginal_cell_rate = 1.2e-5;
  double marginal_fail_prob = 0.35;
  double marginal_min_hold_ms = 256.0;

  // Probability of a soft-error flip per cell per read of a row.
  double soft_error_rate = 1e-9;

  // Wordline (row-to-row) coupling: cells disturbed by the content of the
  // SAME column in a physically adjacent row (§5.2.4 lists this among the
  // random-failure sources PARBOR's filtering must reject — PARBOR's
  // row-local tests cannot control the neighbouring rows' content, so these
  // failures look random to it).
  double wordline_cell_rate = 0.0;
  double wordline_min_hold_ms = 128.0;

  // Anti-cell layout: rows are true/anti in alternating blocks of
  // 2^anti_row_block_shift rows (charge = data XOR anti).
  unsigned anti_row_block_shift = 5;
};

// All special cells of one row, generated lazily and deterministically from
// an Rng forked by (bank, row).  Kept sorted by physical column.
struct RowFaults {
  std::vector<CouplingProfile> coupling;
  std::vector<WeakCellProfile> weak;
  std::vector<VrtCellProfile> vrt;  // holds mutable leaky state
  std::vector<MarginalCellProfile> marginal;
  std::vector<WordlineCellProfile> wordline;
};

// --- precompiled coupling evaluation ---------------------------------------
//
// A CouplingProfile is convenient to generate and inspect, but evaluating it
// on every read means re-deriving the same facts each time: which of the
// eight neighbour slots exist at all (array edges, tile boundaries, repaired
// columns) and which column each slot refers to.  All of that is immutable
// once a row's population exists, so it is resolved ONCE into a flat plan
// held in structure-of-arrays form: per-victim attributes live in parallel
// flat arrays indexed by victim (sorted by ascending min_hold so a scan can
// stop at the first victim the effective hold cannot arm), and each victim's
// live, non-zero sources occupy the contiguous span [src_offset[v],
// src_offset[v+1]) of the flat source arrays.
//
// Bit-exactness invariant: for any data content, evaluate_coupling_plan()
// produces exactly the flip set the original eight-slot walk produced.
// Sources are kept in the original accumulation order (l1, r1, l2, r2, l3,
// r3, l4, r4), so the float sum sees the same addends in the same order;
// dropped sources are exactly those that contribute 0.0f or are never live.
//
// The padded mirror (pad_col / pad_coeff) re-states every victim's sources
// in fixed-width rows of kPaddedSources entries so the block kernel can
// interleave several victims without per-victim span bookkeeping.  Padding
// slots carry coefficient 0.0f and the victim's own column: the interference
// sum only ever adds non-negative terms, so appending `+= 0.0f * x` terms
// leaves the float value bit-identical (+0.0f is the additive identity for
// every non-negative float).
//
// Windowed fire tables: in the main array every source sits at victim+delta
// with delta in -4..+4, so a victim's entire fate is a function of the nine
// data bits in the window [win_base, win_base + 8] around it.  When the
// compile input has that shape (and row_bits >= 9 so the window fits), the
// plan additionally carries, per victim, the window base column and a
// 512-entry one-bit table indexed by the DISCHARGE pattern of the window:
// entry d answers "does this victim fire when window bit j is discharged iff
// bit j of d is set?".  Entries are precomputed by running the exact scalar
// float accumulation (slot order, same addends) for every subset of the
// victim's live sources, so a table lookup IS the scalar kernel's answer —
// the block kernel then needs no float math at all on the read path.  Spare
// plans resolve sources through the remap table (not victim+delta) and keep
// windowed == false.

struct CompiledCouplingPlan {
  // One entry per victim, index order = ascending min_hold (ties keep
  // generation order).  profile_index is the originating profile's position
  // in the compile input — the fault's stable per-row ordinal for the
  // provenance ledger.
  std::vector<std::uint32_t> victim_col;
  std::vector<std::uint32_t> profile_index;
  std::vector<float> threshold;
  std::vector<SimTime> min_hold;
  // Prefix offsets into the source arrays; always victim_count()+1 entries.
  std::vector<std::uint32_t> src_offset;

  // Flat victim-major source arrays (exact form, no padding): column whose
  // charge is probed, its coupling coefficient, and the profile slot it came
  // from (-4..+4).
  std::vector<std::uint32_t> src_col;
  std::vector<float> src_coeff;
  std::vector<std::int32_t> src_delta;

  // Fixed-width padded mirror for the block kernel: victim v's sources sit
  // at [v * kPaddedSources, (v + 1) * kPaddedSources).
  static constexpr std::uint32_t kPaddedSources = 8;
  std::vector<std::uint32_t> pad_col;
  std::vector<float> pad_coeff;

  // Windowed fire tables (see the header comment above).  When `windowed`
  // is set, victim v's window starts at column win_base[v] and its table
  // occupies fire_table[v * kTableBytes .. (v + 1) * kTableBytes).
  static constexpr std::uint32_t kWindow = 9;  // victim +/- 4 columns
  static constexpr std::uint32_t kTableBytes = (1u << kWindow) / 8;
  bool windowed = false;
  std::vector<std::uint32_t> win_base;
  std::vector<std::uint8_t> fire_table;

  std::size_t victim_count() const { return victim_col.size(); }
  std::size_t source_count() const { return src_col.size(); }
};

// Resolves one neighbour slot of a profile: the physical column that acts as
// the interference source at signed offset `delta` (-4..+4, never 0) from
// the victim, or nullopt if no live source exists there.
using SourceResolver = std::function<std::optional<std::uint32_t>(
    const CouplingProfile&, int delta)>;

// Maps a profile to the physical column that is charged-checked and reported
// (identity for the main array; the remap alias for the spare region).
using VictimResolver =
    std::function<std::uint32_t(const CouplingProfile&)>;

// Flattens `profiles` into an evaluation plan.  Victims are stable-sorted by
// min_hold (ties keep generation order), so plans are deterministic.
// `row_bits` is the width of the row the plan will be evaluated against; it
// sizes the windowed fire tables (pass the alias count for spare plans — the
// contiguity check rejects them anyway, and 0 disables windowing outright).
CompiledCouplingPlan compile_coupling_plan(
    const std::vector<CouplingProfile>& profiles,
    const VictimResolver& victim_col, const SourceResolver& source_col,
    std::size_t row_bits);

// Evaluates a compiled plan against row content: a victim in the charged
// state (bit != anti) fails when the summed coefficients of its discharged
// sources reach its threshold.  Failing columns are appended to `out`.
// This is the scalar reference kernel — the bit-exactness oracle the block
// kernel below is tested against.
void evaluate_coupling_plan(const CompiledCouplingPlan& plan, SimTime eff,
                            const BitVec& bits, bool anti,
                            std::vector<std::uint32_t>& out);

// Reusable buffers for the block kernel so batched campaign loops allocate
// nothing per row.
struct CouplingBlockScratch {
  std::vector<std::uint32_t> charged;  // armed victims in the charged state
};

// Block evaluation: same flip set, same output order, same decisions as
// evaluate_coupling_plan, restructured for throughput.  The armed prefix is
// found with one binary search on the min_hold array.  Windowed plans then
// run float-free: per armed victim, load the nine-bit window around it, XOR
// it into discharge space, and look the answer up in the precomputed fire
// table (whose entries were filled by the exact scalar accumulation — slot
// order, same addends — so the §4b accumulation-order invariant is baked
// into the table rather than re-run per read).  Non-windowed plans (the
// spare region) fall back to the padded-mirror path: charged victims are
// compacted branchlessly and their padded source rows accumulated four
// victims at a time on independent float chains, each chain adding its own
// victim's terms in the original slot order.
void evaluate_coupling_plan_block(const CompiledCouplingPlan& plan,
                                  SimTime eff, const BitVec& bits, bool anti,
                                  CouplingBlockScratch& scratch,
                                  std::vector<std::uint32_t>& out);

// Provenance-carrying evaluation for the flip ledger.  Produces the exact
// flip set and order of evaluate_coupling_plan (the interference sum uses
// the same addends in the same order), and additionally reports which
// profile each flip came from and, per armed victim (charged, hold long
// enough), the neighbour state it was probed under: `source_mask` bit k is
// set when compiled source k was discharged.
struct CouplingAttribution {
  std::uint32_t col = 0;
  std::uint32_t profile_index = 0;
};
struct CouplingProbe {
  std::uint32_t profile_index = 0;
  std::uint32_t source_mask = 0;
};
void evaluate_coupling_plan_attributed(const CompiledCouplingPlan& plan,
                                       SimTime eff, const BitVec& bits,
                                       bool anti,
                                       std::vector<std::uint32_t>& out,
                                       std::vector<CouplingAttribution>& flips,
                                       std::vector<CouplingProbe>& probes);

// Tells the generator which physical neighbours of a column actually exist
// as interference sources (same tile, inside the array).  delta is the
// signed neighbour offset (-4..+4, never 0).
using NeighborExists =
    std::function<bool(std::uint32_t col, int delta)>;

// Draws the special-cell population of one row.  Coupling profiles are
// conditioned on the available neighbourhood: a cell next to a tile edge
// distributes its outer coupling over the sources that exist (cells whose
// immediate neighbours are missing cannot be coupling victims at all).
// With no callback, every in-range neighbour of the row line exists.
RowFaults generate_row_faults(const FaultModelParams& params,
                              std::size_t row_cols, Rng rng,
                              const NeighborExists& neighbor_exists = {});

// Poisson draw (Knuth's method; fine for the small lambdas used here).
std::uint64_t poisson_draw(Rng& rng, double lambda);

}  // namespace parbor::dram
