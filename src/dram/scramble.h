// DRAM-internal address scrambling.
//
// DRAM vendors remap system-level bit addresses to physical cell-array
// columns through multiple stages of internal buffering (IO pins -> global
// sense amplifiers -> local sense amplifiers -> cells; see PARBOR §3,
// Fig. 5).  The mapping is undocumented and differs per vendor/generation.
// PARBOR characterises each vendor purely by the *set of system-address
// distances* at which physically adjacent cells land:
//
//     vendor A: {±8, ±16, ±48}
//     vendor B: {±1, ±64}
//     vendor C: {±16, ±33, ±49}
//
// Each scrambler here is a closed-form bijection between physical column
// index and system bit address whose physically-adjacent step set equals the
// corresponding paper set.  Rows are partitioned into *tiles* (physical
// subarrays separated by sense-amplifier stripes); bitline coupling only
// exists between adjacent columns of the same tile, which is what makes
// multi-residue mappings (A, C) physically realisable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string_view>
#include <string>
#include <vector>

namespace parbor::dram {

enum class Vendor { kLinear, kA, kB, kC };

std::string vendor_name(Vendor v);
// Inverse of vendor_name; nullopt for unknown names.  Serialisation (fleet
// manifests, CLI flags) round-trips vendors through these two.
std::optional<Vendor> vendor_from_name(std::string_view name);

class Scrambler {
 public:
  virtual ~Scrambler() = default;
  virtual std::string name() const = 0;

  std::size_t row_bits() const { return phys_to_sys_.size(); }

  // Physical column -> system bit address within the row.
  std::size_t to_system(std::size_t phys) const { return phys_to_sys_[phys]; }
  // System bit address -> physical column.
  std::size_t to_physical(std::size_t sys) const { return sys_to_phys_[sys]; }

  // Tile (physical subarray) containing a physical column.  Coupling exists
  // only between physically adjacent columns of the same tile.
  std::uint32_t tile_of_physical(std::size_t phys) const {
    return tile_of_[phys];
  }

  // True when both physical columns sit in the same subarray (and can
  // therefore see each other's bitline interference at all).
  bool same_tile(std::size_t phys_a, std::size_t phys_b) const {
    return tile_of_[phys_a] == tile_of_[phys_b];
  }

  bool coupled(std::size_t phys_a, std::size_t phys_b) const {
    if (phys_a > phys_b) std::swap(phys_a, phys_b);
    return phys_b - phys_a == 1 && tile_of_[phys_a] == tile_of_[phys_b];
  }

  // Signed system-address distances of physically adjacent (coupled) pairs,
  // from the left cell of each pair: to_system(p+1) - to_system(p).
  std::set<std::int64_t> signed_step_set() const;

  // Absolute values of the above — the paper's published distance sets.
  std::set<std::int64_t> abs_distance_set() const;

 protected:
  // Installs the permutation and validates bijectivity.  `tile_of` gives the
  // tile id of each physical column; it must be monotonically non-decreasing
  // (tiles are contiguous physical ranges).
  void finalize(std::vector<std::uint32_t> phys_to_sys,
                std::vector<std::uint32_t> tile_of);

 private:
  std::vector<std::uint32_t> phys_to_sys_;
  std::vector<std::uint32_t> sys_to_phys_;
  std::vector<std::uint32_t> tile_of_;
};

// Identity mapping (the "no scrambling" strawman from Fig. 1); one tile.
class LinearScrambler final : public Scrambler {
 public:
  explicit LinearScrambler(std::size_t row_bits);
  std::string name() const override { return "linear"; }
};

// Generic motif-walk scrambler.
//
// The row's system addresses are viewed as `stride` interleaved residue
// classes.  Each group of `classes_per_tile` consecutive residue classes
// forms one physical tile; within a tile the physical order follows a motif:
// a permutation M of {0..L-1} in units of `stride`, repeated block after
// block (phys j = L*k + i  ->  unit  L*k + M[i]).  The system-address step
// between consecutive physical cells is stride*(unit-step), so the distance
// set is stride * {motif step set}.  Vendor A is an instance of this engine;
// synthetic vendors for the test suite are built from it too.
class MotifScrambler : public Scrambler {
 public:
  MotifScrambler(std::size_t row_bits, std::size_t stride,
                 std::vector<std::uint32_t> motif, std::string name);
  std::string name() const override { return name_; }

 private:
  std::string name_;
};

// Vendor A: distances {±8, ±16, ±48}.  8 residue classes (mod 8), one tile
// per class, motif [0,6,5,4,2,3,1,7] whose step multiset is {±1,±2,±6} in
// units of 8.
class VendorAScrambler final : public MotifScrambler {
 public:
  explicit VendorAScrambler(std::size_t row_bits);
  std::string name() const override { return "vendorA"; }
};

// Vendor B: distances {±1, ±64}.  A single boustrophedon walk over blocks of
// 64 system addresses: even blocks ascend, odd blocks descend, and the block
// boundary step is +64.  One tile (the walk is physically contiguous).
class VendorBScrambler final : public Scrambler {
 public:
  explicit VendorBScrambler(std::size_t row_bits);
  std::string name() const override { return "vendorB"; }
};

// Structural scrambler built from the paper's §3/Fig. 5 explanation of WHY
// scrambling exists: data crosses two buffering stages on its way to the
// cells.  Each `burst_bits`-wide burst is split into `groups` groups routed
// to different cell arrays (the global sense-amplifier stage), and inside an
// array consecutive bit pairs may be swapped depending on whether the top or
// bottom local sense-amplifier row drives them.  Each cell array is one
// physical tile.  With burst_bits=4, groups=2, pair_swap=true this produces
// exactly the running example of Figs. 5/8: neighbours at distances {±1,±5}.
struct PipelineScramblerConfig {
  std::size_t burst_bits = 4;  // bits per burst arriving at the IO pins
  std::size_t groups = 2;      // GSA groups (= cell arrays) per burst
  bool pair_swap = true;       // LSA top/bottom swap of adjacent bits
};

class PipelineScrambler final : public Scrambler {
 public:
  PipelineScrambler(std::size_t row_bits, const PipelineScramblerConfig& cfg);
  std::string name() const override { return "pipeline"; }
};

// Vendor C: distances {±16, ±33, ±49}.  Residue-pair tiles: tile t covers
// system residues {2t, 2t+1} (mod 16).  Within a tile the walk interleaves
// the two residue "rails" with +49/-33 hops (49 = 3*16+1, 33 = 2*16+1) plus
// +16 runs at the tile edges; every step lands in {±16, ±33, ±49}.
class VendorCScrambler final : public Scrambler {
 public:
  explicit VendorCScrambler(std::size_t row_bits);
  std::string name() const override { return "vendorC"; }
};

std::unique_ptr<Scrambler> make_scrambler(Vendor vendor, std::size_t row_bits);

}  // namespace parbor::dram
