#include "parbor/report_io.h"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "common/build_info.h"
#include "common/check.h"
#include "common/json.h"

namespace parbor::core {

std::string report_to_json(const ParborReport& report,
                           const ReportIoOptions& options) {
  JsonWriter w;
  w.begin_object();
  if (options.with_build_info) {
    w.key("build");
    write_build_info(w);
  }
  if (!options.module_name.empty()) w.field("module", options.module_name);
  if (!options.vendor.empty()) w.field("vendor", options.vendor);

  w.key("discovery").begin_object();
  w.field("tests", report.discovery.tests);
  w.field("victims", static_cast<std::uint64_t>(report.discovery.victims.size()));
  w.field("cells_observed",
          static_cast<std::uint64_t>(report.discovery.observed.size()));
  w.end_object();

  w.key("search").begin_object();
  w.field("tests", report.search.tests);
  w.key("levels").begin_array();
  for (const auto& level : report.search.levels) {
    w.begin_object();
    w.field("level", level.level);
    w.field("region_size", level.region_size);
    w.field("tests", level.tests);
    w.key("ranking").begin_array();
    for (const auto& [d, count] : level.ranking.sorted_by_key()) {
      w.begin_object();
      w.field("distance", d);
      w.field("count", count);
      w.field("kept", std::find(level.found.begin(), level.found.end(), d) !=
                          level.found.end());
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("distances").begin_array();
  for (auto d : report.search.distances) w.value(d);
  w.end_array();
  w.end_object();

  w.key("full_chip").begin_object();
  w.field("tests", report.fullchip.tests);
  w.field("chunk_bits", report.plan.chunk);
  w.field("rounds", static_cast<std::uint64_t>(report.plan.rounds.size()));
  w.field("cells_detected",
          static_cast<std::uint64_t>(report.fullchip.cells.size()));
  if (options.include_cells) {
    w.key("cells").begin_array();
    for (const auto& cell : report.fullchip.cells) {
      w.begin_array();
      w.value(cell.addr.chip);
      w.value(cell.addr.bank);
      w.value(cell.addr.row);
      w.value(cell.sys_bit);
      w.end_array();
    }
    w.end_array();
  }
  w.end_object();

  w.field("total_tests", report.total_tests());
  w.end_object();
  return w.str();
}

void write_cells_csv(std::ostream& os, const std::set<mc::FlipRecord>& cells) {
  os << "chip,bank,row,sys_bit\n";
  for (const auto& cell : cells) {
    os << cell.addr.chip << ',' << cell.addr.bank << ',' << cell.addr.row
       << ',' << cell.sys_bit << '\n';
  }
}

void write_ranking_csv(std::ostream& os, const NeighborSearchResult& search) {
  os << "level,region_size,tests,distance,count,kept\n";
  for (const auto& level : search.levels) {
    for (const auto& [d, count] : level.ranking.sorted_by_key()) {
      const bool kept = std::find(level.found.begin(), level.found.end(),
                                  d) != level.found.end();
      os << level.level << ',' << level.region_size << ',' << level.tests
         << ',' << d << ',' << count << ',' << (kept ? 1 : 0) << '\n';
    }
  }
}

ReportSummary summarize_report(const ParborReport& report,
                               const ReportIoOptions& options) {
  ReportSummary s;
  s.module_name = options.module_name;
  s.vendor = options.vendor;
  s.discovery_tests = report.discovery.tests;
  s.victims = report.discovery.victims.size();
  s.cells_observed = report.discovery.observed.size();
  for (const auto& level : report.search.levels) {
    LevelSummary ls;
    ls.level = level.level;
    ls.region_size = level.region_size;
    ls.tests = level.tests;
    ls.ranking = level.ranking.sorted_by_key();
    ls.kept = level.found;
    s.levels.push_back(std::move(ls));
  }
  s.search_tests = report.search.tests;
  s.distances.assign(report.search.distances.begin(),
                     report.search.distances.end());
  s.fullchip_tests = report.fullchip.tests;
  s.chunk_bits = report.plan.chunk;
  s.rounds = report.plan.rounds.size();
  s.cells_detected = report.fullchip.cells.size();
  if (options.include_cells) {
    s.cells.assign(report.fullchip.cells.begin(), report.fullchip.cells.end());
  }
  s.total_tests = report.total_tests();
  return s;
}

ReportSummary report_summary_from_json(const std::string& json) {
  const JsonValue doc = JsonValue::parse(json);
  ReportSummary s;
  if (doc.has("module")) s.module_name = doc.at("module").as_string();
  if (doc.has("vendor")) s.vendor = doc.at("vendor").as_string();

  const JsonValue& discovery = doc.at("discovery");
  s.discovery_tests = discovery.at("tests").as_uint();
  s.victims = discovery.at("victims").as_uint();
  s.cells_observed = discovery.at("cells_observed").as_uint();

  const JsonValue& search = doc.at("search");
  s.search_tests = search.at("tests").as_uint();
  for (const JsonValue& level : search.at("levels").items()) {
    LevelSummary ls;
    ls.level = static_cast<int>(level.at("level").as_int());
    ls.region_size = static_cast<std::uint32_t>(level.at("region_size").as_uint());
    ls.tests = static_cast<std::uint32_t>(level.at("tests").as_uint());
    for (const JsonValue& entry : level.at("ranking").items()) {
      const std::int64_t d = entry.at("distance").as_int();
      ls.ranking.emplace_back(d, entry.at("count").as_uint());
      if (entry.at("kept").as_bool()) ls.kept.push_back(d);
    }
    s.levels.push_back(std::move(ls));
  }
  for (const JsonValue& d : search.at("distances").items()) {
    s.distances.push_back(d.as_int());
  }

  const JsonValue& fullchip = doc.at("full_chip");
  s.fullchip_tests = fullchip.at("tests").as_uint();
  s.chunk_bits = static_cast<std::uint32_t>(fullchip.at("chunk_bits").as_uint());
  s.rounds = fullchip.at("rounds").as_uint();
  s.cells_detected = fullchip.at("cells_detected").as_uint();
  if (fullchip.has("cells")) {
    for (const JsonValue& cell : fullchip.at("cells").items()) {
      PARBOR_CHECK_MSG(cell.size() == 4, "cell entry must be [chip,bank,row,bit]");
      mc::FlipRecord record;
      record.addr.chip = static_cast<std::uint32_t>(cell[0].as_uint());
      record.addr.bank = static_cast<std::uint32_t>(cell[1].as_uint());
      record.addr.row = static_cast<std::uint32_t>(cell[2].as_uint());
      record.sys_bit = static_cast<std::uint32_t>(cell[3].as_uint());
      s.cells.push_back(record);
    }
  }

  s.total_tests = doc.at("total_tests").as_uint();
  return s;
}

std::string write_report_files(const ParborReport& report,
                               const std::string& prefix,
                               const ReportIoOptions& options) {
  const std::string json_path = prefix + ".json";
  {
    std::ofstream os(json_path);
    PARBOR_CHECK_MSG(os.good(), "cannot open " << json_path);
    os << report_to_json(report, options) << '\n';
  }
  {
    std::ofstream os(prefix + "_cells.csv");
    PARBOR_CHECK_MSG(os.good(), "cannot open " << prefix << "_cells.csv");
    write_cells_csv(os, report.fullchip.cells);
  }
  {
    std::ofstream os(prefix + "_ranking.csv");
    PARBOR_CHECK_MSG(os.good(), "cannot open " << prefix << "_ranking.csv");
    write_ranking_csv(os, report.search);
  }
  return json_path;
}

}  // namespace parbor::core
