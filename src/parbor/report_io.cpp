#include "parbor/report_io.h"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "common/check.h"
#include "common/json.h"

namespace parbor::core {

std::string report_to_json(const ParborReport& report,
                           const ReportIoOptions& options) {
  JsonWriter w;
  w.begin_object();
  if (!options.module_name.empty()) w.field("module", options.module_name);
  if (!options.vendor.empty()) w.field("vendor", options.vendor);

  w.key("discovery").begin_object();
  w.field("tests", report.discovery.tests);
  w.field("victims", static_cast<std::uint64_t>(report.discovery.victims.size()));
  w.field("cells_observed",
          static_cast<std::uint64_t>(report.discovery.observed.size()));
  w.end_object();

  w.key("search").begin_object();
  w.field("tests", report.search.tests);
  w.key("levels").begin_array();
  for (const auto& level : report.search.levels) {
    w.begin_object();
    w.field("level", level.level);
    w.field("region_size", level.region_size);
    w.field("tests", level.tests);
    w.key("ranking").begin_array();
    for (const auto& [d, count] : level.ranking.sorted_by_key()) {
      w.begin_object();
      w.field("distance", d);
      w.field("count", count);
      w.field("kept", std::find(level.found.begin(), level.found.end(), d) !=
                          level.found.end());
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("distances").begin_array();
  for (auto d : report.search.distances) w.value(d);
  w.end_array();
  w.end_object();

  w.key("full_chip").begin_object();
  w.field("tests", report.fullchip.tests);
  w.field("chunk_bits", report.plan.chunk);
  w.field("rounds", static_cast<std::uint64_t>(report.plan.rounds.size()));
  w.field("cells_detected",
          static_cast<std::uint64_t>(report.fullchip.cells.size()));
  if (options.include_cells) {
    w.key("cells").begin_array();
    for (const auto& cell : report.fullchip.cells) {
      w.begin_array();
      w.value(cell.addr.chip);
      w.value(cell.addr.bank);
      w.value(cell.addr.row);
      w.value(cell.sys_bit);
      w.end_array();
    }
    w.end_array();
  }
  w.end_object();

  w.field("total_tests", report.total_tests());
  w.end_object();
  return w.str();
}

void write_cells_csv(std::ostream& os, const std::set<mc::FlipRecord>& cells) {
  os << "chip,bank,row,sys_bit\n";
  for (const auto& cell : cells) {
    os << cell.addr.chip << ',' << cell.addr.bank << ',' << cell.addr.row
       << ',' << cell.sys_bit << '\n';
  }
}

void write_ranking_csv(std::ostream& os, const NeighborSearchResult& search) {
  os << "level,region_size,tests,distance,count,kept\n";
  for (const auto& level : search.levels) {
    for (const auto& [d, count] : level.ranking.sorted_by_key()) {
      const bool kept = std::find(level.found.begin(), level.found.end(),
                                  d) != level.found.end();
      os << level.level << ',' << level.region_size << ',' << level.tests
         << ',' << d << ',' << count << ',' << (kept ? 1 : 0) << '\n';
    }
  }
}

std::string write_report_files(const ParborReport& report,
                               const std::string& prefix,
                               const ReportIoOptions& options) {
  const std::string json_path = prefix + ".json";
  {
    std::ofstream os(json_path);
    PARBOR_CHECK_MSG(os.good(), "cannot open " << json_path);
    os << report_to_json(report, options) << '\n';
  }
  {
    std::ofstream os(prefix + "_cells.csv");
    PARBOR_CHECK_MSG(os.good(), "cannot open " << prefix << "_cells.csv");
    write_cells_csv(os, report.fullchip.cells);
  }
  {
    std::ofstream os(prefix + "_ranking.csv");
    PARBOR_CHECK_MSG(os.good(), "cannot open " << prefix << "_ranking.csv");
    write_ranking_csv(os, report.search);
  }
  return json_path;
}

}  // namespace parbor::core
