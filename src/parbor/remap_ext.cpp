#include "parbor/remap_ext.h"

#include <algorithm>

#include "common/bitvec.h"
#include "common/ledger/ledger.h"

namespace parbor::core {

namespace {

bool victim_flips(const std::vector<mc::FlipRecord>& flips, const Victim& v) {
  return std::any_of(flips.begin(), flips.end(), [&](const mc::FlipRecord& f) {
    return f.addr == v.addr && f.sys_bit == v.sys_bit;
  });
}

}  // namespace

bool verify_regularity(mc::TestHost& host, const Victim& victim,
                       const std::set<std::int64_t>& signed_distances,
                       std::uint64_t* tests) {
  const auto n = static_cast<std::int64_t>(host.row_bits());
  BitVec pattern(host.row_bits(), victim.fail_data);
  for (auto d : signed_distances) {
    const std::int64_t bit = static_cast<std::int64_t>(victim.sys_bit) + d;
    if (bit >= 0 && bit < n) {
      pattern.set(static_cast<std::size_t>(bit), !victim.fail_data);
    }
  }
  pattern.set(victim.sys_bit, victim.fail_data);
  std::vector<mc::RowPattern> rows{{victim.addr, &pattern}};
  const auto flips = host.run_test(rows);
  if (tests != nullptr) *tests += 1;
  return victim_flips(flips, victim);
}

std::set<std::int64_t> find_individual_neighbors(mc::TestHost& host,
                                                 const Victim& victim,
                                                 std::uint32_t subdivision,
                                                 std::uint64_t* tests) {
  const std::uint32_t n = host.row_bits();
  const auto sizes = level_region_sizes(n, subdivision);
  BitVec pattern(n);

  // A genuine (even remapped) data-dependent victim has at most two
  // physical neighbours, so at most two regions can legitimately keep
  // failing per level.  More than that means the victim fails at random
  // (marginal / VRT) and carries no locational information.
  constexpr std::size_t kMaxPlausibleRegions = 2;

  // Regions kept at the previous level, as absolute region indices.
  std::vector<std::uint32_t> kept{0};
  std::uint32_t prev_size = n;
  std::uint64_t local_tests = 0;

  for (std::uint32_t size : sizes) {
    const std::uint32_t subdiv = prev_size / size;
    std::vector<std::uint32_t> next;
    for (std::uint32_t region : kept) {
      for (std::uint32_t j = 0; j < subdiv; ++j) {
        const std::uint32_t candidate = region * subdiv + j;
        pattern.fill(victim.fail_data);
        pattern.set_range(static_cast<std::size_t>(candidate) * size,
                          static_cast<std::size_t>(candidate + 1) * size,
                          !victim.fail_data);
        pattern.set(victim.sys_bit, victim.fail_data);
        std::vector<mc::RowPattern> rows{{victim.addr, &pattern}};
        const auto flips = host.run_test(rows);
        ++local_tests;
        if (victim_flips(flips, victim)) next.push_back(candidate);
      }
    }
    if (next.size() > kMaxPlausibleRegions && prev_size < n) {
      // Randomly failing cell: abort, report nothing.
      if (tests != nullptr) *tests += local_tests;
      return {};
    }
    kept = std::move(next);
    prev_size = size;
    if (kept.empty()) break;
  }

  if (tests != nullptr) *tests += local_tests;
  std::set<std::int64_t> distances;
  if (prev_size == 1) {
    for (auto bit : kept) {
      distances.insert(static_cast<std::int64_t>(bit) -
                       static_cast<std::int64_t>(victim.sys_bit));
    }
  }
  return distances;
}

RemapDetectionResult detect_irregular_victims(
    mc::TestHost& host, const std::vector<Victim>& victims,
    const NeighborSearchResult& main_result, const ParborConfig& config) {
  RemapDetectionResult result;
  ledger::PhaseScope phase(ledger::Phase::kRemap);
  for (const Victim& v : victims) {
    if (verify_regularity(host, v, main_result.distances, &result.tests)) {
      continue;  // obeys the regular mapping
    }
    IrregularVictim entry;
    entry.victim = v;
    entry.distances = find_individual_neighbors(host, v, config.subdivision,
                                                &result.tests);
    // A victim that stopped failing everywhere was transient noise, not a
    // remapped cell; only keep mapped ones.
    if (!entry.distances.empty()) {
      result.irregular.push_back(std::move(entry));
    }
  }
  return result;
}

}  // namespace parbor::core
