#include "parbor/retention.h"

#include "common/ledger/ledger.h"

namespace parbor::core {

RetentionProfile profile_retention(mc::TestHost& host, const RoundPlan& plan,
                                   SimTime relaxed_interval) {
  RetentionProfile profile;
  ledger::PhaseScope phase(ledger::Phase::kRetention);
  profile.rows_total = host.all_rows().size();

  // A separate host over the same module runs the profiling at the relaxed
  // interval without disturbing the caller's wait configuration.
  mc::TestHost probe(host.module(), host.timing(), relaxed_interval);

  auto absorb = [&](const std::vector<mc::FlipRecord>& flips) {
    for (const auto& f : flips) profile.fast_rows.insert(f.addr);
    ++profile.tests;
  };

  const std::uint32_t row_bits = host.row_bits();
  // Solid patterns: plain retention failures in both cell polarities.
  absorb(probe.run_broadcast_test(BitVec(row_bits, false)));
  absorb(probe.run_broadcast_test(BitVec(row_bits, true)));
  // Worst-case neighbour-aware rounds: data-dependent cells that cannot
  // survive the relaxed interval when content conspires against them.
  for (std::size_t r = 0; r < plan.rounds.size(); ++r) {
    for (bool polarity : {true, false}) {
      absorb(probe.run_broadcast_test(
          round_pattern(plan, r, polarity, row_bits)));
    }
  }
  return profile;
}

}  // namespace parbor::core
