#include "parbor/baselines.h"

#include <algorithm>
#include <string>

#include "common/bitvec.h"
#include "common/ledger/ledger.h"
#include "common/rng.h"

namespace parbor::core {

CampaignResult run_random_campaign(mc::TestHost& host, std::uint64_t tests,
                                   std::uint64_t seed) {
  CampaignResult result;
  ledger::PhaseScope phase(ledger::Phase::kRandom);
  const bool label = ledger::FlipLedger::global().enabled();
  Rng rng = Rng(seed).fork("random-campaign");
  for (std::uint64_t t = 0; t < tests; ++t) {
    if (label) ledger::set_pattern("u" + std::to_string(t));
    // Uniformly random content is permutation-invariant, so it can be
    // generated directly in physical space (skipping the scrambler pass).
    const auto flips = host.run_generated_physical_test(
        [&](mc::RowAddr, BitVec& bits) { bits.fill_random(rng); });
    for (const auto& f : flips) result.cells.insert(f);
    ++result.tests;
  }
  return result;
}

CampaignResult run_simple_campaign(mc::TestHost& host) {
  CampaignResult result;
  ledger::PhaseScope phase(ledger::Phase::kBaseline);
  const std::uint32_t row_bits = host.row_bits();
  std::vector<BitVec> patterns;
  patterns.emplace_back(row_bits, false);  // all 0s
  patterns.emplace_back(row_bits, true);   // all 1s
  BitVec checker(row_bits);
  for (std::uint32_t b = 0; b < row_bits; b += 2) checker.set(b, true);
  patterns.push_back(checker);   // 0x55...
  patterns.push_back(~checker);  // 0xAA...
  for (const BitVec& p : patterns) {
    for (const auto& f : host.run_broadcast_test(p)) result.cells.insert(f);
    ++result.tests;
  }
  return result;
}

std::set<std::int64_t> exhaustive_neighbor_search(mc::TestHost& host,
                                                  const Victim& victim,
                                                  std::uint64_t* tests_out) {
  const std::uint32_t n = host.row_bits();
  ledger::PhaseScope phase(ledger::Phase::kSearch);
  std::uint64_t tests = 0;
  BitVec pattern(n);
  bool have_intersection = false;
  std::set<std::uint32_t> intersection;
  for (std::uint32_t a = 0; a < n; ++a) {
    if (a == victim.sys_bit) continue;
    for (std::uint32_t b = a + 1; b < n; ++b) {
      if (b == victim.sys_bit) continue;
      pattern.fill(victim.fail_data);
      pattern.set(a, !victim.fail_data);
      pattern.set(b, !victim.fail_data);
      std::vector<mc::RowPattern> rows{{victim.addr, &pattern}};
      const auto flips = host.run_test(rows);
      ++tests;
      const bool failed =
          std::any_of(flips.begin(), flips.end(), [&](const mc::FlipRecord& f) {
            return f.addr == victim.addr && f.sys_bit == victim.sys_bit;
          });
      if (!failed) continue;
      // The coupled neighbours are exactly the cells present in every
      // failing pair: a strongly coupled victim fails for any pair that
      // includes its strong neighbour; a weakly coupled one only for the
      // pair of both neighbours.
      if (!have_intersection) {
        intersection = {a, b};
        have_intersection = true;
      } else {
        std::set<std::uint32_t> keep;
        if (intersection.contains(a)) keep.insert(a);
        if (intersection.contains(b)) keep.insert(b);
        intersection = std::move(keep);
      }
    }
  }
  if (tests_out != nullptr) *tests_out = tests;
  std::set<std::int64_t> distances;
  for (auto bit : intersection) {
    distances.insert(static_cast<std::int64_t>(bit) -
                     static_cast<std::int64_t>(victim.sys_bit));
  }
  return distances;
}

std::set<std::int64_t> linear_neighbor_search(
    mc::TestHost& host, const std::vector<Victim>& victims,
    std::uint64_t* tests_out) {
  const std::uint32_t n = host.row_bits();
  ledger::PhaseScope phase(ledger::Phase::kSearch);
  std::uint64_t tests = 0;
  std::set<std::int64_t> distances;
  BitVec pattern(n);
  // Test bit offset o (victim-relative) for all victims simultaneously.
  for (std::int64_t offset = -static_cast<std::int64_t>(n) + 1;
       offset < static_cast<std::int64_t>(n); ++offset) {
    if (offset == 0) continue;
    std::vector<BitVec> storage;
    std::vector<const Victim*> tested;
    for (const Victim& v : victims) {
      const std::int64_t bit = static_cast<std::int64_t>(v.sys_bit) + offset;
      if (bit < 0 || bit >= static_cast<std::int64_t>(n)) continue;
      pattern.fill(v.fail_data);
      pattern.set(static_cast<std::size_t>(bit), !v.fail_data);
      storage.push_back(pattern);
      tested.push_back(&v);
    }
    if (tested.empty()) continue;
    std::vector<mc::RowPattern> rows;
    rows.reserve(storage.size());
    for (std::size_t i = 0; i < storage.size(); ++i) {
      rows.push_back({tested[i]->addr, &storage[i]});
    }
    const auto flips = host.run_test(rows);
    ++tests;
    const std::set<mc::FlipRecord> flip_set(flips.begin(), flips.end());
    for (const Victim* v : tested) {
      if (flip_set.contains({v->addr, v->sys_bit})) distances.insert(offset);
    }
  }
  if (tests_out != nullptr) *tests_out = tests;
  return distances;
}

}  // namespace parbor::core
