#include "parbor/fleet.h"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <system_error>

#include "common/check.h"
#include "common/fileio.h"
#include "common/json.h"
#include "common/leasedir.h"
#include "common/ledger/ledger.h"
#include "common/telemetry/campaign_obs.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/progress.h"
#include "common/telemetry/trace.h"

namespace parbor::core {

namespace fs = std::filesystem;

namespace {

constexpr int kFleetFormatVersion = 1;

fs::path manifest_path(const std::string& dir) {
  return fs::path(dir) / "manifest.json";
}

fs::path results_dir(const std::string& dir) {
  return fs::path(dir) / "results";
}

fs::path result_path(const std::string& dir, const std::string& key) {
  return results_dir(dir) / (key + ".json");
}

fs::path ledger_fragment_path(const std::string& dir,
                              const std::string& key) {
  return results_dir(dir) / (key + ".ledger.jsonl");
}

std::string slurp(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  PARBOR_CHECK_MSG(is.good(), "fleet: cannot read " << path.string());
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

// Checkpoint writes are whole-file atomic: a private tmp file, then one
// rename.  A killed worker therefore leaves either no checkpoint or a
// complete one — a torn shard result cannot exist, which is what makes
// resume "read it or redo it" with no third case.
void atomic_replace(const fs::path& path, const std::string& text) {
  const fs::path tmp(path.string() + ".tmp." + leasedir::process_owner());
  const auto err = write_text_file(tmp.string(), text);
  PARBOR_CHECK_MSG(err.empty(), "fleet: " << err);
  std::error_code ec;
  fs::rename(tmp, path, ec);
  PARBOR_CHECK_MSG(!ec, "fleet: cannot publish " << path.string() << ": "
                                                 << ec.message());
}

// The per-shard checkpoint document: a versioned wrapper around the exact
// result-object bytes the sweep serialiser emits.
std::string shard_checkpoint_json(const FleetShard& shard,
                                  const SweepJobResult& result) {
  JsonWriter w;
  w.begin_object();
  w.field("fleet_shard", kFleetFormatVersion);
  w.field("key", shard.key);
  w.key("result").raw(sweep_result_to_json(result));
  w.end_object();
  return w.str();
}

std::map<std::string, const FleetShard*> shards_by_key(
    const std::vector<FleetShard>& shards) {
  std::map<std::string, const FleetShard*> by_key;
  for (const FleetShard& shard : shards) by_key[shard.key] = &shard;
  return by_key;
}

// Worker-level counters, registered lazily like engine_metrics() so a
// process that never runs fleet work never pays for the names.
struct FleetMetrics {
  telemetry::MetricsRegistry::Id shards_done;
  telemetry::MetricsRegistry::Id stale_requeued;
  telemetry::MetricsRegistry::Id stale_released;
};

const FleetMetrics& fleet_metrics() {
  static const FleetMetrics metrics = [] {
    auto& reg = telemetry::MetricsRegistry::global();
    FleetMetrics m;
    m.shards_done = reg.counter("fleet.shards_done");
    m.stale_requeued = reg.counter("fleet.stale_requeued");
    m.stale_released = reg.counter("fleet.stale_released");
    return m;
  }();
  return metrics;
}

}  // namespace

std::string shard_key(const SweepJob& job) {
  return dram::vendor_name(job.vendor) + std::to_string(job.index) + "-" +
         campaign_kind_name(job.kind);
}

std::vector<FleetShard> fleet_shards(const FleetSpec& spec) {
  auto jobs =
      make_population_jobs(spec.scale, spec.kind, spec.vendors, spec.indices);
  for (SweepJob& job : jobs) {
    job.soft_errors = spec.soft_errors;
    job.seed_base = spec.seed_base;
    job.config.seed = spec.config_seed;
  }
  std::stable_sort(jobs.begin(), jobs.end(), job_order_less);

  std::vector<FleetShard> shards;
  shards.reserve(jobs.size());
  std::set<std::string> seen;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    FleetShard shard;
    shard.key = shard_key(jobs[i]);
    shard.job = jobs[i];
    shard.index = static_cast<std::uint32_t>(i);
    PARBOR_CHECK_MSG(seen.insert(shard.key).second,
                     "fleet: duplicate shard key \"" << shard.key << "\"");
    shards.push_back(std::move(shard));
  }
  return shards;
}

std::string fleet_manifest_to_json(const FleetSpec& spec) {
  const auto shards = fleet_shards(spec);  // validates the spec
  JsonWriter w;
  w.begin_object();
  w.field("fleet", kFleetFormatVersion);
  w.key("vendors").begin_array();
  for (auto vendor : spec.vendors) w.value(dram::vendor_name(vendor));
  w.end_array();
  w.key("indices").begin_array();
  for (int index : spec.indices) w.value(index);
  w.end_array();
  w.field("scale", dram::scale_name(spec.scale));
  w.field("kind", campaign_kind_name(spec.kind));
  w.field("soft_errors", spec.soft_errors);
  w.field("ledger", spec.ledger);
  w.field("seed_base", spec.seed_base);
  w.field("config_seed", spec.config_seed);
  w.key("shards").begin_array();
  for (const FleetShard& shard : shards) w.value(shard.key);
  w.end_array();
  w.end_object();
  return w.str();
}

FleetSpec fleet_manifest_from_json(const std::string& json) {
  const JsonValue v = JsonValue::parse(json);
  PARBOR_CHECK_MSG(v.is_object() && v.has("fleet"),
                   "fleet: not a manifest document");
  PARBOR_CHECK_MSG(v.at("fleet").as_int() == kFleetFormatVersion,
                   "fleet: unsupported manifest version "
                       << v.at("fleet").as_int());
  FleetSpec spec;
  spec.vendors.clear();
  for (const auto& name : v.at("vendors").items()) {
    const auto vendor = dram::vendor_from_name(name.as_string());
    PARBOR_CHECK_MSG(vendor.has_value(),
                     "fleet: unknown vendor \"" << name.as_string() << "\"");
    spec.vendors.push_back(*vendor);
  }
  spec.indices.clear();
  for (const auto& index : v.at("indices").items()) {
    spec.indices.push_back(static_cast<int>(index.as_int()));
  }
  const auto scale = dram::scale_from_name(v.at("scale").as_string());
  PARBOR_CHECK_MSG(scale.has_value(), "fleet: unknown scale \""
                                          << v.at("scale").as_string()
                                          << "\"");
  spec.scale = *scale;
  const auto kind = campaign_kind_from_name(v.at("kind").as_string());
  PARBOR_CHECK_MSG(kind.has_value(), "fleet: unknown campaign kind \""
                                         << v.at("kind").as_string() << "\"");
  spec.kind = *kind;
  spec.soft_errors = v.at("soft_errors").as_bool();
  spec.ledger = v.at("ledger").as_bool();
  spec.seed_base = v.at("seed_base").as_uint();
  spec.config_seed = v.at("config_seed").as_uint();

  // The shard list is derived state; a hand-edited manifest whose list
  // disagrees with its own spec would silently skew the merge, so verify.
  const auto shards = fleet_shards(spec);
  const auto& listed = v.at("shards").items();
  PARBOR_CHECK_MSG(listed.size() == shards.size(),
                   "fleet: manifest shard list disagrees with its spec");
  for (std::size_t i = 0; i < shards.size(); ++i) {
    PARBOR_CHECK_MSG(listed[i].as_string() == shards[i].key,
                     "fleet: manifest shard list disagrees with its spec at "
                         << i);
  }
  return spec;
}

void fleet_init(const std::string& dir, const FleetSpec& spec) {
  PARBOR_CHECK_MSG(!fs::exists(manifest_path(dir)),
                   "fleet: " << dir << " already holds a campaign");
  const auto shards = fleet_shards(spec);
  fs::create_directories(results_dir(dir));
  std::vector<std::string> keys;
  keys.reserve(shards.size());
  for (const FleetShard& shard : shards) keys.push_back(shard.key);
  leasedir::init_queue(dir, keys);
  // The manifest is published last: a directory with a manifest is a
  // fully-formed campaign, so workers can never attach to a half-built one.
  atomic_replace(manifest_path(dir), fleet_manifest_to_json(spec) + "\n");
}

FleetSpec fleet_load_manifest(const std::string& dir) {
  PARBOR_CHECK_MSG(fs::exists(manifest_path(dir)),
                   "fleet: no campaign at " << dir << " (missing "
                                            << manifest_path(dir).string()
                                            << ")");
  return fleet_manifest_from_json(slurp(manifest_path(dir)));
}

FleetWorkerResult fleet_work(const std::string& dir,
                             const FleetWorkerOptions& options) {
  const FleetSpec spec = fleet_load_manifest(dir);
  const auto shards = fleet_shards(spec);
  const auto by_key = shards_by_key(shards);
  const auto has_checkpoint = [&](const std::string& key) {
    return fs::exists(result_path(dir, key));
  };

  // While a ledgered campaign runs, the worker owns the process-global
  // flip ledger (armed per shard, dumped into the shard's fragment).  The
  // ambient enabled-state is restored on return for in-process callers.
  auto& ledger = ledger::FlipLedger::global();
  const bool ledger_was_enabled = ledger.enabled();
  if (spec.ledger) ledger.set_enabled(true);

  // Heartbeats carry MetricsRegistry scrapes, so an observed worker owns
  // the global registry for its lifetime (same restore pattern as the
  // ledger).  Everything below is advisory: results never depend on it.
  auto& reg = telemetry::MetricsRegistry::global();
  const bool metrics_was_enabled = reg.enabled();
  telemetry::CampaignObserver obs;
  if (options.heartbeat) {
    obs = telemetry::CampaignObserver(dir, leasedir::process_owner());
    obs.set_die_at_heartbeat(options.die_at_heartbeat);
    reg.set_enabled(true);
  }
  // Register the fleet counter names up front: a worker that drains zero
  // shards from a racing queue still dumps them (as zeros), so a metrics
  // consumer can --require them unconditionally.
  if (reg.enabled()) fleet_metrics();

  // Shards checkpointed before we attached (a resumed campaign) seed the
  // meter's done count and its ETA baseline: they cost this run nothing.
  std::size_t done_at_start = 0;
  for (const FleetShard& shard : shards) {
    if (has_checkpoint(shard.key)) ++done_at_start;
  }
  telemetry::ProgressMeter meter("fleet", shards.size(), options.progress,
                                 done_at_start);

  auto& trace = telemetry::TraceRecorder::global();
  telemetry::TraceSpan worker_span("fleet.worker");
  obs.event("worker_start");
  obs.heartbeat("start", {}, 0);

  FleetWorkerResult out;
  while (true) {
    const auto reclaimed = leasedir::reclaim_stale(dir, has_checkpoint);
    out.requeued_stale += reclaimed.requeued;
    out.released_done += reclaimed.released_done;
    for (const auto& lease : reclaimed.requeued_leases) {
      if (reg.enabled()) reg.inc(fleet_metrics().stale_requeued);
      obs.event("stale_requeue", lease.key,
                {{"dead_pid", static_cast<std::uint64_t>(lease.pid)}});
    }
    for (const auto& lease : reclaimed.released_leases) {
      if (reg.enabled()) reg.inc(fleet_metrics().stale_released);
      obs.event("stale_release", lease.key,
                {{"dead_pid", static_cast<std::uint64_t>(lease.pid)}});
    }
    const auto claim = leasedir::try_claim(dir);
    if (!claim) {
      // Nothing claimable: the queue is drained (or every remaining shard
      // is leased to a live worker).  If we just re-queued stale work, go
      // around once more in case nobody else grabbed it yet.
      if (reclaimed.requeued == 0) break;
      continue;
    }
    const FleetShard& shard = *by_key.at(claim->key);
    obs.event("claim", shard.key);
    obs.heartbeat("compute", shard.key, out.shards_run);
    meter.note("[fleet worker " + claim->owner + "] shard " + shard.key +
               "...");
    meter.job_started();
    if (spec.ledger) ledger.reset();
    SweepJobResult result;
    {
      telemetry::TraceSpan shard_span("fleet.shard");
      if (trace.enabled()) shard_span.note("shard", shard.key);
      result = CampaignEngine::run_job_instrumented(shard.job, shard.index);
    }
    if (options.die_after_shards >= 0 &&
        out.shards_run >=
            static_cast<std::size_t>(options.die_after_shards)) {
      // Crash-test hook: die mid-shard, after the work but before any
      // checkpoint byte — the worst honest crash (lease held, work lost).
      std::raise(SIGKILL);
    }
    if (spec.ledger) {
      atomic_replace(ledger_fragment_path(dir, shard.key),
                     ledger.dump_jsonl());
    }
    atomic_replace(result_path(dir, shard.key),
                   shard_checkpoint_json(shard, result) + "\n");
    const std::uint64_t tests =
        result.report.total_tests() + result.random.tests;
    obs.event("checkpoint", shard.key, {{"tests", tests}});
    if (reg.enabled()) reg.inc(fleet_metrics().shards_done);
    leasedir::release(*claim);
    obs.event("release", shard.key);
    ++out.shards_run;
    obs.heartbeat("checkpoint", shard.key, out.shards_run);
    meter.job_finished(result.report.all_detected().size() +
                       result.random.cells.size());
    meter.note("[fleet worker " + claim->owner + "] shard " + shard.key +
               " done (" + std::to_string(tests) + " tests)");
    if (options.max_shards >= 0 &&
        out.shards_run >= static_cast<std::size_t>(options.max_shards)) {
      break;
    }
  }
  obs.event("worker_exit", {}, {{"shards_run", out.shards_run}});
  obs.heartbeat("exit", {}, out.shards_run);
  meter.finish();
  if (spec.ledger) {
    ledger.reset();
    ledger.set_enabled(ledger_was_enabled);
  }
  if (options.heartbeat) reg.set_enabled(metrics_was_enabled);
  return out;
}

FleetStatus fleet_status(const std::string& dir) {
  const FleetSpec spec = fleet_load_manifest(dir);
  const auto shards = fleet_shards(spec);
  std::map<std::string, leasedir::Lease> lease_by_key;
  for (auto& lease : leasedir::leases(dir)) {
    lease_by_key[lease.key] = lease;
  }

  FleetStatus status;
  status.total = shards.size();
  for (const FleetShard& shard : shards) {
    FleetShardStatus s;
    s.key = shard.key;
    if (fs::exists(result_path(dir, shard.key))) {
      s.state = ShardState::kDone;
      ++status.done;
    } else if (const auto it = lease_by_key.find(shard.key);
               it != lease_by_key.end()) {
      s.state = ShardState::kClaimed;
      s.owner_pid = it->second.pid;
      s.owner_alive = leasedir::pid_alive(it->second.pid);
      s.claimed_unix_ms = leasedir::lease_claimed_unix_ms(it->second);
      ++status.claimed;
    } else {
      s.state = ShardState::kTodo;
      ++status.todo;
    }
    status.shards.push_back(std::move(s));
  }
  return status;
}

std::string fleet_merge(const std::string& dir, bool with_build_info) {
  const FleetSpec spec = fleet_load_manifest(dir);
  const auto shards = fleet_shards(spec);

  std::vector<std::string> objects;
  objects.reserve(shards.size());
  std::uint64_t total_tests = 0;
  std::size_t missing = 0;
  std::string first_missing;
  for (const FleetShard& shard : shards) {
    if (!fs::exists(result_path(dir, shard.key))) {
      if (missing == 0) first_missing = shard.key;
      ++missing;
      continue;
    }
    const JsonValue v = JsonValue::parse(slurp(result_path(dir, shard.key)));
    PARBOR_CHECK_MSG(v.is_object() && v.has("fleet_shard") &&
                         v.at("fleet_shard").as_int() == kFleetFormatVersion,
                     "fleet: " << result_path(dir, shard.key).string()
                               << " is not a shard checkpoint");
    PARBOR_CHECK_MSG(v.at("key").as_string() == shard.key,
                     "fleet: checkpoint key \"" << v.at("key").as_string()
                                                << "\" under file for \""
                                                << shard.key << "\"");
    const JsonValue& result = v.at("result");
    total_tests += result.at("tests").as_uint();
    if (result.has("random_tests")) {
      total_tests += result.at("random_tests").as_uint();
    }
    // dump() re-emits the parsed object byte-exact, so the merged document
    // carries the checkpoint bytes verbatim.
    objects.push_back(result.dump());
  }
  PARBOR_CHECK_MSG(missing == 0,
                   "fleet: campaign incomplete — " << missing << " of "
                                                   << shards.size()
                                                   << " shard(s) without a "
                                                      "checkpoint (first: "
                                                   << first_missing << ")");
  return assemble_sweep_json(objects, total_tests, with_build_info);
}

std::vector<std::string> fleet_ledger_fragments(const std::string& dir) {
  const FleetSpec spec = fleet_load_manifest(dir);
  std::vector<std::string> paths;
  for (const FleetShard& shard : fleet_shards(spec)) {
    const fs::path p = ledger_fragment_path(dir, shard.key);
    if (fs::exists(p)) paths.push_back(p.string());
  }
  return paths;
}

}  // namespace parbor::core
