#include "parbor/parbor.h"

#include "common/check.h"
#include "common/ledger/ledger.h"
#include "common/telemetry/progress.h"
#include "common/telemetry/trace.h"

namespace parbor::core {

namespace {

void validate(const ParborConfig& config) {
  PARBOR_CHECK_MSG(config.subdivision >= 2, "subdivision must be >= 2");
  PARBOR_CHECK_MSG(config.rank_threshold >= 0.0 &&
                       config.rank_threshold <= 1.0,
                   "rank_threshold must be in [0, 1]");
  PARBOR_CHECK_MSG(config.marginal_discard_frac > 0.0 &&
                       config.marginal_discard_frac <= 1.0,
                   "marginal_discard_frac must be in (0, 1]");
  PARBOR_CHECK_MSG(config.max_victims >= 1, "need at least one victim");
  PARBOR_CHECK_MSG(config.discovery_patterns >= 1,
                   "need at least one discovery pattern");
}

}  // namespace

ParborReport run_parbor_search_only(mc::TestHost& host,
                                    const ParborConfig& config) {
  validate(config);
  ParborReport report;
  {
    telemetry::TraceSpan span("parbor.discovery");
    ledger::PhaseScope phase(ledger::Phase::kDiscovery);
    telemetry::phase_note("victim discovery");
    report.discovery = discover_victims(host, config);
    span.note("victims", report.discovery.victims.size());
    span.note("tests", report.discovery.tests);
  }
  {
    telemetry::TraceSpan span("parbor.search");
    ledger::PhaseScope phase(ledger::Phase::kSearch);
    telemetry::phase_note("recursive neighbour search");
    report.search =
        find_neighbor_distances(host, report.discovery.victims, config);
    span.note("levels", report.search.levels.size());
    span.note("distances", report.search.distances.size());
    span.note("tests", report.search.tests);
  }
  return report;
}

ParborReport run_parbor(mc::TestHost& host, const ParborConfig& config) {
  ParborReport report = run_parbor_search_only(host, config);
  PARBOR_CHECK_MSG(!report.search.distances.empty(),
                   "PARBOR found no neighbour distances; the module appears "
                   "to have no data-dependent failures to characterise");
  report.plan = make_round_plan(report.search.abs_distances(),
                                host.row_bits());
  {
    telemetry::TraceSpan span("parbor.fullchip");
    ledger::PhaseScope phase(ledger::Phase::kFullchip);
    telemetry::phase_note("full-chip campaign");
    report.fullchip = run_fullchip_test(host, report.plan);
    span.note("rounds", report.plan.rounds.size());
    span.note("cells", report.fullchip.cells.size());
    span.note("tests", report.fullchip.tests);
  }
  return report;
}

}  // namespace parbor::core
