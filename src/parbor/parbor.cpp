#include "parbor/parbor.h"

#include "common/check.h"

namespace parbor::core {

namespace {

void validate(const ParborConfig& config) {
  PARBOR_CHECK_MSG(config.subdivision >= 2, "subdivision must be >= 2");
  PARBOR_CHECK_MSG(config.rank_threshold >= 0.0 &&
                       config.rank_threshold <= 1.0,
                   "rank_threshold must be in [0, 1]");
  PARBOR_CHECK_MSG(config.marginal_discard_frac > 0.0 &&
                       config.marginal_discard_frac <= 1.0,
                   "marginal_discard_frac must be in (0, 1]");
  PARBOR_CHECK_MSG(config.max_victims >= 1, "need at least one victim");
  PARBOR_CHECK_MSG(config.discovery_patterns >= 1,
                   "need at least one discovery pattern");
}

}  // namespace

ParborReport run_parbor_search_only(mc::TestHost& host,
                                    const ParborConfig& config) {
  validate(config);
  ParborReport report;
  report.discovery = discover_victims(host, config);
  report.search =
      find_neighbor_distances(host, report.discovery.victims, config);
  return report;
}

ParborReport run_parbor(mc::TestHost& host, const ParborConfig& config) {
  ParborReport report = run_parbor_search_only(host, config);
  PARBOR_CHECK_MSG(!report.search.distances.empty(),
                   "PARBOR found no neighbour distances; the module appears "
                   "to have no data-dependent failures to characterise");
  report.plan = make_round_plan(report.search.abs_distances(),
                                host.row_bits());
  report.fullchip = run_fullchip_test(host, report.plan);
  return report;
}

}  // namespace parbor::core
