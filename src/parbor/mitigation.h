// Mitigation planning from a detection campaign.
//
// The point of system-level detection (§1, §3) is enabling in-field
// mitigation: once the data-dependent failures are known, the system can
// retire pages, repair individual bits with spare/ECC resources, or keep
// vulnerable rows on a fast refresh schedule (the DC-REF family).  This
// module turns a campaign's failure set into a concrete plan and quantifies
// each policy's overhead, and can verify a plan's coverage against a fresh
// campaign on the same module.
#pragma once

#include "memctrl/host.h"
#include "parbor/fullchip.h"
#include "parbor/patterns.h"

namespace parbor::core {

enum class MitigationPolicy {
  kRetireRows,       // map out every row containing a failing cell
  kBitRepair,        // remap each failing bit onto spare/ECC resources
  kTargetedRefresh,  // keep failing rows on the fast refresh schedule
};

std::string mitigation_policy_name(MitigationPolicy policy);

struct MitigationPlan {
  MitigationPolicy policy = MitigationPolicy::kRetireRows;
  std::set<mc::RowAddr> rows;        // retired or fast-refreshed rows
  std::set<mc::FlipRecord> bits;     // individually repaired bits

  // Storage overhead of the plan, in bits, for a given row width.  Row
  // retirement costs whole rows; bit repair costs one spare bit (plus
  // mapping metadata, ignored here) per failure; targeted refresh costs no
  // capacity (it costs refresh energy instead).
  std::uint64_t capacity_cost_bits(std::uint32_t row_bits) const;
  double capacity_cost_fraction(std::uint32_t row_bits,
                                std::uint64_t total_rows) const;
};

MitigationPlan plan_mitigation(const CampaignResult& campaign,
                               MitigationPolicy policy);

struct MitigationCheck {
  std::uint64_t failures_seen = 0;
  std::uint64_t covered = 0;    // failures the plan mitigates
  std::uint64_t residual = 0;   // failures the plan would let through
};

// Re-runs the neighbour-aware campaign and checks every observed failure
// against the plan.  kTargetedRefresh additionally verifies that the
// vulnerable rows genuinely survive at the NOMINAL (64 ms) interval —
// the condition that makes refresh-based mitigation sound.
MitigationCheck verify_mitigation(mc::TestHost& host, const RoundPlan& plan,
                                  const MitigationPlan& mitigation);

}  // namespace parbor::core
