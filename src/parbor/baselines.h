// Baseline test campaigns PARBOR is compared against, plus the naive
// neighbour-location searches whose cost motivates the whole paper.
#pragma once

#include "memctrl/host.h"
#include "parbor/fullchip.h"
#include "parbor/types.h"

namespace parbor::core {

// Random-pattern testing (§7.2's equal-budget comparison): `tests` rounds,
// each writing fresh per-row random content to the whole module.
CampaignResult run_random_campaign(mc::TestHost& host, std::uint64_t tests,
                                   std::uint64_t seed);

// The "simple patterns" strawman from §3: all-0s, all-1s, 0x55/0xAA
// checkerboards, and row stripes — each with its inverse already included.
CampaignResult run_simple_campaign(mc::TestHost& host);

// Naive exhaustive two-bit neighbour search (§3 challenge 2): for one
// victim, tests every pair of other bit addresses in the row with the
// worst-case pattern — O(n^2) tests.  Returns the signed distances of the
// cells that are present in EVERY failing pair (the coupled neighbours).
// Only feasible for small rows; used to cross-validate PARBOR's results.
std::set<std::int64_t> exhaustive_neighbor_search(mc::TestHost& host,
                                                  const Victim& victim,
                                                  std::uint64_t* tests_out);

// Linear O(n) search (§4.1): one bit at a time, all victim rows in
// parallel; finds the strong-side neighbour distances only.
std::set<std::int64_t> linear_neighbor_search(
    mc::TestHost& host, const std::vector<Victim>& victims,
    std::uint64_t* tests_out);

}  // namespace parbor::core
