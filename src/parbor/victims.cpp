#include "parbor/victims.h"

#include <utility>

#include "common/bitvec.h"
#include "common/ledger/ledger.h"
#include "common/rng.h"

namespace parbor::core {

DiscoveryReport discover_victims(mc::TestHost& host,
                                 const ParborConfig& config) {
  const std::uint32_t row_bits = host.row_bits();
  Rng rng = Rng(config.seed).fork("discovery");

  // Generate the random patterns up front so pass/fail per (cell, value)
  // can be reconstructed: pattern 2k is random, pattern 2k+1 its inverse.
  std::vector<BitVec> patterns;
  for (int i = 0; i < config.discovery_patterns; ++i) {
    BitVec p(row_bits);
    for (std::uint32_t b = 0; b < row_bits; ++b) {
      if (rng.bernoulli(0.5)) p.set(b, true);
    }
    patterns.push_back(p);
    patterns.push_back(~p);
  }

  // flip_sets[t] = cells that flipped in test t.
  std::vector<std::set<mc::FlipRecord>> flip_sets;
  std::set<mc::FlipRecord> any_flip;
  const bool label = ledger::FlipLedger::global().enabled();
  for (const BitVec& p : patterns) {
    if (label) ledger::set_pattern("d" + std::to_string(flip_sets.size()));
    auto flips = host.run_broadcast_test(p);
    std::set<mc::FlipRecord> s(flips.begin(), flips.end());
    for (const auto& f : s) any_flip.insert(f);
    flip_sets.push_back(std::move(s));
  }

  // A cell qualifies if for some data value d it failed in one test that
  // wrote d and survived another test that wrote d.
  DiscoveryReport report;
  report.observed = any_flip;
  report.tests = patterns.size();
  std::set<std::pair<std::uint32_t, std::uint32_t>> rows_taken;  // dedupe
  for (const mc::FlipRecord& cell : any_flip) {
    bool fail_for[2] = {false, false};
    bool pass_for[2] = {false, false};
    for (std::size_t t = 0; t < patterns.size(); ++t) {
      const bool d = patterns[t].get(cell.sys_bit);
      if (flip_sets[t].contains(cell)) {
        fail_for[d] = true;
      } else {
        pass_for[d] = true;
      }
    }
    int fail_value = -1;
    if (fail_for[1] && pass_for[1]) fail_value = 1;
    if (fail_value < 0 && fail_for[0] && pass_for[0]) fail_value = 0;
    if (fail_value < 0) continue;  // weak (always fails for a value) or clean

    // One victim per row: parallel recursion writes one victim-centred
    // pattern per row.
    const auto row_key =
        std::make_pair(cell.addr.chip * 1000000u + cell.addr.bank,
                       cell.addr.row);
    if (!rows_taken.insert(row_key).second) continue;

    report.victims.push_back(
        Victim{cell.addr, cell.sys_bit, fail_value == 1});
    if (report.victims.size() >= config.max_victims) break;
  }
  return report;
}

}  // namespace parbor::core
