#include "parbor/fullchip.h"

#include <string>

#include "common/ledger/ledger.h"

namespace parbor::core {

CampaignResult run_fullchip_test(mc::TestHost& host, const RoundPlan& plan) {
  CampaignResult result;
  const std::uint32_t row_bits = host.row_bits();
  const bool label = ledger::FlipLedger::global().enabled();
  for (std::size_t r = 0; r < plan.rounds.size(); ++r) {
    for (bool tested_value : {true, false}) {
      if (label) {
        ledger::set_pattern("r" + std::to_string(r) +
                            (tested_value ? "" : "~"));
      }
      const BitVec pattern = round_pattern(plan, r, tested_value, row_bits);
      for (const auto& flip : host.run_broadcast_test(pattern)) {
        result.cells.insert(flip);
      }
      ++result.tests;
    }
  }
  return result;
}

}  // namespace parbor::core
