#include "parbor/mitigation.h"

#include "common/ledger/ledger.h"
#include "common/telemetry/trace.h"

namespace parbor::core {

std::string mitigation_policy_name(MitigationPolicy policy) {
  switch (policy) {
    case MitigationPolicy::kRetireRows:
      return "retire-rows";
    case MitigationPolicy::kBitRepair:
      return "bit-repair";
    case MitigationPolicy::kTargetedRefresh:
      return "targeted-refresh";
  }
  return "?";
}

std::uint64_t MitigationPlan::capacity_cost_bits(
    std::uint32_t row_bits) const {
  switch (policy) {
    case MitigationPolicy::kRetireRows:
      return static_cast<std::uint64_t>(rows.size()) * row_bits;
    case MitigationPolicy::kBitRepair:
      return bits.size();
    case MitigationPolicy::kTargetedRefresh:
      return 0;
  }
  return 0;
}

double MitigationPlan::capacity_cost_fraction(std::uint32_t row_bits,
                                              std::uint64_t total_rows) const {
  const double total =
      static_cast<double>(total_rows) * static_cast<double>(row_bits);
  return total > 0.0
             ? static_cast<double>(capacity_cost_bits(row_bits)) / total
             : 0.0;
}

MitigationPlan plan_mitigation(const CampaignResult& campaign,
                               MitigationPolicy policy) {
  telemetry::TraceSpan span("parbor.mitigation.plan");
  span.note("policy", mitigation_policy_name(policy));
  MitigationPlan plan;
  plan.policy = policy;
  for (const auto& cell : campaign.cells) {
    switch (policy) {
      case MitigationPolicy::kRetireRows:
      case MitigationPolicy::kTargetedRefresh:
        plan.rows.insert(cell.addr);
        break;
      case MitigationPolicy::kBitRepair:
        plan.bits.insert(cell);
        break;
    }
  }
  span.note("rows", plan.rows.size());
  span.note("bits", plan.bits.size());
  return plan;
}

MitigationCheck verify_mitigation(mc::TestHost& host, const RoundPlan& plan,
                                  const MitigationPlan& mitigation) {
  telemetry::TraceSpan span("parbor.mitigation.verify");
  ledger::PhaseScope phase(ledger::Phase::kMitigation);
  span.note("policy", mitigation_policy_name(mitigation.policy));
  MitigationCheck check;
  auto covered_by_plan = [&](const mc::FlipRecord& f) {
    switch (mitigation.policy) {
      case MitigationPolicy::kRetireRows:
      case MitigationPolicy::kTargetedRefresh:
        return mitigation.rows.contains(f.addr);
      case MitigationPolicy::kBitRepair:
        return mitigation.bits.contains(f);
    }
    return false;
  };

  // Fresh campaign at the testing interval: everything observed must be
  // covered.
  const CampaignResult campaign = run_fullchip_test(host, plan);
  for (const auto& f : campaign.cells) {
    ++check.failures_seen;
    if (covered_by_plan(f)) {
      ++check.covered;
    } else {
      ++check.residual;
    }
  }

  if (mitigation.policy == MitigationPolicy::kTargetedRefresh) {
    // Soundness of refresh-based mitigation: at the nominal 64 ms interval
    // nothing may fail at all (fast-refreshed rows are refreshed there by
    // construction; everything else must be naturally safe).
    mc::TestHost nominal(host.module(), host.timing(), SimTime::ms(64));
    const CampaignResult at_64ms = run_fullchip_test(nominal, plan);
    for (const auto& f : at_64ms.cells) {
      if (!mitigation.rows.contains(f.addr)) {
        ++check.residual;
        ++check.failures_seen;
      }
    }
  }
  span.note("failures_seen", check.failures_seen);
  span.note("covered", check.covered);
  span.note("residual", check.residual);
  return check;
}

}  // namespace parbor::core
