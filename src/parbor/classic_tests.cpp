#include "parbor/classic_tests.h"

#include "common/ledger/ledger.h"

namespace parbor::core {

CampaignResult run_march_cm_campaign(mc::TestHost& host) {
  CampaignResult result;
  ledger::PhaseScope phase(ledger::Phase::kBaseline);
  const std::uint32_t row_bits = host.row_bits();
  const BitVec zeros(row_bits, false);
  const BitVec ones(row_bits, true);

  // Row-granularity March C-: each element writes its value everywhere,
  // holds for the test interval, and the next element's read phase is the
  // broadcast read that follows.  The read-check of element k is fused into
  // the flip collection of the broadcast test.
  //
  //   up(w0)        -> write zeros
  //   up(r0, w1)    -> read (collect), write ones
  //   up(r1, w0)    -> read, write zeros
  //   down(r0, w1)  -> read, write ones
  //   down(r1, w0)  -> read, write zeros
  //   down(r0)      -> read
  //
  // Ascending/descending order does not change behaviour in this model
  // (broadcast writes are order-independent), but the element sequence and
  // the retention pauses match the manufacturing-style procedure.
  for (const BitVec* element : {&zeros, &ones, &zeros, &ones, &zeros}) {
    for (const auto& flip : host.run_broadcast_test(*element)) {
      result.cells.insert(flip);
    }
    ++result.tests;
  }
  return result;
}

CampaignResult run_npsf_campaign(
    mc::TestHost& host, const std::set<std::int64_t>& assumed_distances) {
  CampaignResult result;
  ledger::PhaseScope phase(ledger::Phase::kBaseline);
  // The NPSF base cell + deleted neighbourhood reduces to exactly the
  // round-pattern machinery, with the *assumed* distance set instead of a
  // measured one: every bit is placed at the worst case of the assumed
  // neighbourhood once per polarity.
  const RoundPlan plan =
      make_round_plan(assumed_distances, host.row_bits());
  for (std::size_t r = 0; r < plan.rounds.size(); ++r) {
    for (bool polarity : {true, false}) {
      const BitVec pattern =
          round_pattern(plan, r, polarity, host.row_bits());
      for (const auto& flip : host.run_broadcast_test(pattern)) {
        result.cells.insert(flip);
      }
      ++result.tests;
    }
  }
  return result;
}

}  // namespace parbor::core
