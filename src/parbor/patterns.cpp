#include "parbor/patterns.h"

#include <algorithm>
#include <bit>

#include "common/check.h"

namespace parbor::core {

namespace {

// Cyclic (mod chunk) interference check between two offsets.
bool conflicts(std::uint32_t a, std::uint32_t b,
               const std::set<std::int64_t>& d, std::uint32_t chunk) {
  const std::uint32_t fwd = a < b ? b - a : a - b;
  const std::uint32_t wrap = chunk - fwd;
  return d.contains(static_cast<std::int64_t>(fwd)) ||
         d.contains(static_cast<std::int64_t>(wrap));
}

bool round_is_independent(const std::vector<std::uint32_t>& round,
                          const std::set<std::int64_t>& d,
                          std::uint32_t chunk) {
  for (std::size_t i = 0; i < round.size(); ++i) {
    for (std::size_t j = i + 1; j < round.size(); ++j) {
      if (conflicts(round[i], round[j], d, chunk)) return false;
    }
  }
  return true;
}

bool plan_is_valid(const RoundPlan& plan, const std::set<std::int64_t>& d) {
  std::vector<bool> covered(plan.chunk, false);
  for (const auto& round : plan.rounds) {
    if (!round_is_independent(round, d, plan.chunk)) return false;
    for (auto o : round) {
      if (o >= plan.chunk || covered[o]) return false;
      covered[o] = true;
    }
  }
  return std::all_of(covered.begin(), covered.end(),
                     [](bool c) { return c; });
}

RoundPlan contiguous_plan(std::uint32_t chunk, std::uint32_t group) {
  RoundPlan plan;
  plan.chunk = chunk;
  for (std::uint32_t start = 0; start < chunk; start += group) {
    std::vector<std::uint32_t> round;
    for (std::uint32_t o = start; o < std::min(start + group, chunk); ++o) {
      round.push_back(o);
    }
    plan.rounds.push_back(std::move(round));
  }
  return plan;
}

RoundPlan strided_plan(std::uint32_t chunk) {
  // Windows of 32 bits, four rounds per window with stride-4 groups.
  RoundPlan plan;
  plan.chunk = chunk;
  for (std::uint32_t w = 0; w * 32 < chunk; ++w) {
    for (std::uint32_t q = 0; q < 4; ++q) {
      std::vector<std::uint32_t> round;
      for (std::uint32_t j = 0; j < 8; ++j) {
        const std::uint32_t o = w * 32 + q + 4 * j;
        if (o < chunk) round.push_back(o);
      }
      if (!round.empty()) plan.rounds.push_back(std::move(round));
    }
  }
  return plan;
}

RoundPlan greedy_plan(std::uint32_t chunk, const std::set<std::int64_t>& d) {
  RoundPlan plan;
  plan.chunk = chunk;
  for (std::uint32_t o = 0; o < chunk; ++o) {
    bool placed = false;
    for (auto& round : plan.rounds) {
      bool ok = true;
      for (auto existing : round) {
        if (conflicts(existing, o, d, chunk)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        round.push_back(o);
        placed = true;
        break;
      }
    }
    if (!placed) plan.rounds.push_back({o});
  }
  return plan;
}

}  // namespace

namespace {

std::uint32_t checked_chunk(const std::set<std::int64_t>& abs_distances,
                            std::uint32_t row_bits) {
  PARBOR_CHECK_MSG(!abs_distances.empty(),
                   "cannot build a round plan from an empty distance set");
  for (auto d : abs_distances) PARBOR_CHECK(d > 0);
  const auto dmax = static_cast<std::uint32_t>(*abs_distances.rbegin());
  PARBOR_CHECK(dmax < row_bits / 2);
  return std::min(2 * std::bit_ceil(dmax), row_bits);
}

}  // namespace

RoundPlan make_round_plan_greedy(const std::set<std::int64_t>& abs_distances,
                                 std::uint32_t row_bits) {
  const std::uint32_t chunk = checked_chunk(abs_distances, row_bits);
  RoundPlan plan = greedy_plan(chunk, abs_distances);
  PARBOR_CHECK_MSG(plan_is_valid(plan, abs_distances),
                   "greedy round plan failed validation");
  return plan;
}

RoundPlan make_round_plan(const std::set<std::int64_t>& abs_distances,
                          std::uint32_t row_bits) {
  const std::uint32_t chunk = checked_chunk(abs_distances, row_bits);
  const auto dmin = static_cast<std::uint32_t>(*abs_distances.begin());

  RoundPlan plan;
  if (dmin >= 8) {
    plan = contiguous_plan(chunk, dmin);
    if (plan_is_valid(plan, abs_distances)) return plan;
  }
  if (chunk % 32 == 0) {
    plan = strided_plan(chunk);
    if (plan_is_valid(plan, abs_distances)) return plan;
  }
  plan = greedy_plan(chunk, abs_distances);
  PARBOR_CHECK_MSG(plan_is_valid(plan, abs_distances),
                   "greedy round plan failed validation");
  return plan;
}

BitVec round_pattern(const RoundPlan& plan, std::size_t round,
                     bool tested_value, std::uint32_t row_bits) {
  PARBOR_CHECK(round < plan.rounds.size());
  BitVec pattern(row_bits, !tested_value);
  for (std::uint32_t base = 0; base < row_bits; base += plan.chunk) {
    for (auto o : plan.rounds[round]) {
      const std::uint32_t bit = base + o;
      if (bit < row_bits) pattern.set(bit, tested_value);
    }
  }
  return pattern;
}

}  // namespace parbor::core
