#include "parbor/engine.h"

#include <algorithm>
#include <chrono>

#include "common/build_info.h"
#include "common/check.h"
#include "common/json.h"
#include "common/ledger/ledger.h"
#include "common/rng.h"
#include "dram/fault_table.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/progress.h"
#include "common/telemetry/trace.h"
#include "parbor/baselines.h"

namespace parbor::core {

namespace {

// The engine's only wall-clock reads: they feed the advisory wall_seconds
// report field and the engine.job_wall_s histogram, never result bytes
// (sweep payloads derive exclusively from sim_time and the seeded Rng).
// detlint: allow(wall-clock) -- engine wall-timing telemetry, not results
using WallClock = std::chrono::steady_clock;

struct EngineMetrics {
  telemetry::MetricsRegistry::Id jobs_done;
  telemetry::MetricsRegistry::Id flips;
  telemetry::MetricsRegistry::Id jobs_queued;
  telemetry::MetricsRegistry::Id jobs_running;
  telemetry::MetricsRegistry::Id job_wall_s;
};

const EngineMetrics& engine_metrics() {
  static const EngineMetrics metrics = [] {
    auto& reg = telemetry::MetricsRegistry::global();
    EngineMetrics m;
    m.jobs_done = reg.counter("engine.jobs_done");
    m.flips = reg.counter("engine.flips");
    m.jobs_queued = reg.gauge("engine.jobs_queued");
    m.jobs_running = reg.gauge("engine.jobs_running");
    m.job_wall_s =
        reg.histogram("engine.job_wall_s",
                      {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0});
    return m;
  }();
  return metrics;
}

// Per-job line label and trace-track name, known before the job runs.
std::string job_label(const SweepJob& job) {
  return std::string(dram::vendor_name(job.vendor)) +
         std::to_string(job.index) + " " + campaign_kind_name(job.kind);
}

}  // namespace

const char* campaign_kind_name(CampaignKind kind) {
  switch (kind) {
    case CampaignKind::kSearchOnly: return "search";
    case CampaignKind::kFullPipeline: return "full";
    case CampaignKind::kFullWithRandom: return "full+random";
  }
  return "?";
}

std::optional<CampaignKind> campaign_kind_from_name(std::string_view name) {
  if (name == "search") return CampaignKind::kSearchOnly;
  if (name == "full") return CampaignKind::kFullPipeline;
  if (name == "full+random") return CampaignKind::kFullWithRandom;
  return std::nullopt;
}

bool job_order_less(const SweepJob& a, const SweepJob& b) {
  if (a.vendor != b.vendor) return a.vendor < b.vendor;
  if (a.index != b.index) return a.index < b.index;
  return a.kind < b.kind;
}

std::uint64_t derive_job_seed(const SweepJob& job) {
  // Chain the job tuple through SplitMix64 the same way Rng::fork does:
  // each field perturbs the state, the final mix decorrelates streams even
  // for adjacent tuples.  Scale and temperature are deliberately excluded —
  // the paper's §6 claim is that the same module characterises identically
  // across temperatures, which needs the same test stream.
  std::uint64_t state = job.config.seed;
  splitmix64(state);
  state ^= (static_cast<std::uint64_t>(job.vendor) + 1) * 0x9e3779b97f4a7c15ULL;
  splitmix64(state);
  state ^= static_cast<std::uint64_t>(job.index) * 0xbf58476d1ce4e5b9ULL;
  splitmix64(state);
  state ^= static_cast<std::uint64_t>(job.kind) * 0x94d049bb133111ebULL;
  splitmix64(state);
  state ^= job.seed_base;
  return splitmix64(state);
}

std::uint64_t SweepReport::total_tests() const {
  std::uint64_t total = 0;
  for (const auto& r : results) total += r.report.total_tests() + r.random.tests;
  return total;
}

SimTime SweepReport::total_sim_time() const {
  SimTime total;
  for (const auto& r : results) total += r.sim_elapsed;
  return total;
}

SweepJobResult CampaignEngine::run_job(const SweepJob& job) {
  const auto t0 = WallClock::now();

  SweepJobResult out;
  out.job = job;

  auto module_config =
      dram::make_module_config(job.vendor, job.index, job.scale, job.seed_base);
  if (!job.soft_errors) module_config.chip.faults.soft_error_rate = 0.0;
  dram::Module module(module_config);
  module.set_temperature(job.temperature_c);
  mc::TestHost host(module);

  ParborConfig config = job.config;
  config.seed = derive_job_seed(job);

  out.report = job.kind == CampaignKind::kSearchOnly
                   ? run_parbor_search_only(host, config)
                   : run_parbor(host, config);
  if (job.kind == CampaignKind::kFullWithRandom) {
    out.random = run_random_campaign(host, out.report.total_tests(),
                                     config.seed ^ 0xabcdefULL);
  }

  // Ground truth for the provenance ledger: the module's injected-fault
  // table under the current job index (set by the sweep's JobScope; 0 for
  // standalone runs).  Populations are pure functions of the module seed,
  // so enumerating rows the campaign never touched perturbs nothing.
  if (ledger::FlipLedger::global().enabled()) {
    dram::record_fault_table(module, ledger::read_context().job,
                             campaign_kind_name(job.kind));
  }

  out.module_name = module.name();
  out.row_bits = host.row_bits();
  out.scrambler_name = module.chip(0).scrambler().name();
  out.truth_distances = module.chip(0).scrambler().abs_distance_set();
  out.sim_elapsed = host.now();
  out.row_operations = host.row_operations();
  out.wall_seconds =
      std::chrono::duration<double>(WallClock::now() - t0)
          .count();
  return out;
}

SweepJobResult CampaignEngine::run_job_instrumented(const SweepJob& job,
                                                    std::uint32_t job_index) {
  auto& trace = telemetry::TraceRecorder::global();
  auto& reg = telemetry::MetricsRegistry::global();
  telemetry::TraceRecorder::set_current_track(job_index + 1);
  SweepJobResult result;
  {
    ledger::JobScope ledger_job(job_index);
    telemetry::TraceSpan span("engine.job");
    if (trace.enabled()) span.note("job", job_label(job));
    result = run_job(job);
    if (trace.enabled()) {
      span.note("module", result.module_name);
      span.note("tests", result.report.total_tests());
      span.note("flips", result.report.all_detected().size());
    }
  }
  telemetry::TraceRecorder::set_current_track(
      telemetry::TraceRecorder::kMainTrack);
  if (reg.enabled()) {
    reg.inc(engine_metrics().jobs_done);
    reg.inc(engine_metrics().flips,
            result.report.all_detected().size() + result.random.cells.size());
    reg.observe(engine_metrics().job_wall_s, result.wall_seconds);
  }
  return result;
}

SweepReport CampaignEngine::run(const std::vector<SweepJob>& jobs) {
  return run(jobs, RunOptions{});
}

SweepReport CampaignEngine::run(const std::vector<SweepJob>& jobs,
                                const RunOptions& options) {
  const auto t0 = WallClock::now();
  SweepReport sweep;
  sweep.workers = workers();
  sweep.results.resize(jobs.size());

  auto& trace = telemetry::TraceRecorder::global();
  auto& reg = telemetry::MetricsRegistry::global();
  if (trace.enabled()) {
    // Track 0 stays the main thread; every job gets its own lane so a
    // sweep renders as parallel job slices in Perfetto.
    trace.set_track_name(telemetry::TraceRecorder::kMainTrack, "main");
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      trace.set_track_name(static_cast<std::uint32_t>(i + 1),
                           "job " + job_label(jobs[i]));
    }
  }
  if (reg.enabled()) {
    reg.gauge_set(engine_metrics().jobs_queued,
                  static_cast<std::int64_t>(jobs.size()));
    reg.gauge_set(engine_metrics().jobs_running, 0);
  }
  telemetry::ProgressMeter meter("sweep", jobs.size(), options.progress);

  telemetry::TraceSpan sweep_span("engine.sweep");
  sweep_span.note("jobs", jobs.size());
  sweep_span.note("workers", sweep.workers);

  pool_.parallel_for(jobs.size(), [&](std::size_t i) {
    if (reg.enabled()) {
      reg.gauge_add(engine_metrics().jobs_queued, -1);
      reg.gauge_add(engine_metrics().jobs_running, 1);
    }
    meter.job_started();
    sweep.results[i] =
        run_job_instrumented(jobs[i], static_cast<std::uint32_t>(i));
    std::uint64_t flips = 0;
    if (reg.enabled() || options.progress) {
      const SweepJobResult& r = sweep.results[i];
      flips = r.report.all_detected().size() + r.random.cells.size();
    }
    if (reg.enabled()) reg.gauge_add(engine_metrics().jobs_running, -1);
    meter.job_finished(flips);
  });
  meter.finish();
  sweep.wall_seconds =
      std::chrono::duration<double>(WallClock::now() - t0)
          .count();
  return sweep;
}

std::vector<SweepJob> make_population_jobs(dram::Scale scale,
                                           CampaignKind kind,
                                           const std::vector<dram::Vendor>& vendors,
                                           const std::vector<int>& indices) {
  std::vector<SweepJob> jobs;
  jobs.reserve(vendors.size() * indices.size());
  for (auto vendor : vendors) {
    for (int index : indices) {
      PARBOR_CHECK_MSG(index >= 1 && index <= 6,
                       "module index must be 1..6, got " << index);
      SweepJob job;
      job.vendor = vendor;
      job.index = index;
      job.scale = scale;
      job.kind = kind;
      jobs.push_back(job);
    }
  }
  return jobs;
}

std::string sweep_result_to_json(const SweepJobResult& r) {
  JsonWriter w;
  w.begin_object();
  w.field("module", r.module_name);
  w.field("vendor", dram::vendor_name(r.job.vendor));
  w.field("kind", campaign_kind_name(r.job.kind));
  w.field("seed", derive_job_seed(r.job));
  w.field("tests", r.report.total_tests());
  w.field("victims",
          static_cast<std::uint64_t>(r.report.discovery.victims.size()));
  w.key("distances").begin_array();
  for (auto d : r.report.search.distances) w.value(d);
  w.end_array();
  w.field("cells_detected",
          static_cast<std::uint64_t>(r.report.all_detected().size()));
  if (r.job.kind == CampaignKind::kFullWithRandom) {
    w.field("random_tests", r.random.tests);
    w.field("random_cells", static_cast<std::uint64_t>(r.random.cells.size()));
  }
  w.field("sim_seconds", r.sim_elapsed.seconds());
  w.end_object();
  return w.str();
}

std::string assemble_sweep_json(const std::vector<std::string>& result_objects,
                                std::uint64_t total_tests,
                                bool with_build_info) {
  JsonWriter w;
  w.begin_object();
  if (with_build_info) {
    w.key("build");
    write_build_info(w);
  }
  w.field("modules", static_cast<std::uint64_t>(result_objects.size()));
  w.field("total_tests", total_tests);
  w.key("results").begin_array();
  for (const auto& obj : result_objects) w.raw(obj);
  w.end_array();
  w.end_object();
  return w.str();
}

std::string sweep_report_to_json(const SweepReport& sweep,
                                 bool with_build_info) {
  // Canonical order, not submission order: stable-sort by the job key so
  // the bytes are invariant under job-list permutation — the same order a
  // fleet merge reconstructs from per-shard checkpoints.
  std::vector<const SweepJobResult*> ordered;
  ordered.reserve(sweep.results.size());
  for (const auto& r : sweep.results) ordered.push_back(&r);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const SweepJobResult* a, const SweepJobResult* b) {
                     return job_order_less(a->job, b->job);
                   });
  std::vector<std::string> objects;
  objects.reserve(ordered.size());
  for (const SweepJobResult* r : ordered) {
    objects.push_back(sweep_result_to_json(*r));
  }
  return assemble_sweep_json(objects, sweep.total_tests(), with_build_info);
}

}  // namespace parbor::core
