#include "parbor/engine.h"

#include <chrono>

#include "common/check.h"
#include "common/json.h"
#include "common/rng.h"

namespace parbor::core {

const char* campaign_kind_name(CampaignKind kind) {
  switch (kind) {
    case CampaignKind::kSearchOnly: return "search";
    case CampaignKind::kFullPipeline: return "full";
    case CampaignKind::kFullWithRandom: return "full+random";
  }
  return "?";
}

std::uint64_t derive_job_seed(const SweepJob& job) {
  // Chain the job tuple through SplitMix64 the same way Rng::fork does:
  // each field perturbs the state, the final mix decorrelates streams even
  // for adjacent tuples.  Scale and temperature are deliberately excluded —
  // the paper's §6 claim is that the same module characterises identically
  // across temperatures, which needs the same test stream.
  std::uint64_t state = job.config.seed;
  splitmix64(state);
  state ^= (static_cast<std::uint64_t>(job.vendor) + 1) * 0x9e3779b97f4a7c15ULL;
  splitmix64(state);
  state ^= static_cast<std::uint64_t>(job.index) * 0xbf58476d1ce4e5b9ULL;
  splitmix64(state);
  state ^= static_cast<std::uint64_t>(job.kind) * 0x94d049bb133111ebULL;
  splitmix64(state);
  state ^= job.seed_base;
  return splitmix64(state);
}

std::uint64_t SweepReport::total_tests() const {
  std::uint64_t total = 0;
  for (const auto& r : results) total += r.report.total_tests() + r.random.tests;
  return total;
}

SimTime SweepReport::total_sim_time() const {
  SimTime total;
  for (const auto& r : results) total += r.sim_elapsed;
  return total;
}

SweepJobResult CampaignEngine::run_job(const SweepJob& job) {
  const auto t0 = std::chrono::steady_clock::now();

  SweepJobResult out;
  out.job = job;

  const auto module_config =
      dram::make_module_config(job.vendor, job.index, job.scale, job.seed_base);
  dram::Module module(module_config);
  module.set_temperature(job.temperature_c);
  mc::TestHost host(module);

  ParborConfig config = job.config;
  config.seed = derive_job_seed(job);

  out.report = job.kind == CampaignKind::kSearchOnly
                   ? run_parbor_search_only(host, config)
                   : run_parbor(host, config);
  if (job.kind == CampaignKind::kFullWithRandom) {
    out.random = run_random_campaign(host, out.report.total_tests(),
                                     config.seed ^ 0xabcdefULL);
  }

  out.module_name = module.name();
  out.row_bits = host.row_bits();
  out.scrambler_name = module.chip(0).scrambler().name();
  out.truth_distances = module.chip(0).scrambler().abs_distance_set();
  out.sim_elapsed = host.now();
  out.row_operations = host.row_operations();
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

SweepReport CampaignEngine::run(const std::vector<SweepJob>& jobs) {
  const auto t0 = std::chrono::steady_clock::now();
  SweepReport sweep;
  sweep.workers = workers();
  sweep.results.resize(jobs.size());
  pool_.parallel_for(jobs.size(), [&](std::size_t i) {
    sweep.results[i] = run_job(jobs[i]);
  });
  sweep.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return sweep;
}

std::vector<SweepJob> make_population_jobs(dram::Scale scale,
                                           CampaignKind kind,
                                           const std::vector<dram::Vendor>& vendors,
                                           const std::vector<int>& indices) {
  std::vector<SweepJob> jobs;
  jobs.reserve(vendors.size() * indices.size());
  for (auto vendor : vendors) {
    for (int index : indices) {
      PARBOR_CHECK_MSG(index >= 1 && index <= 6,
                       "module index must be 1..6, got " << index);
      SweepJob job;
      job.vendor = vendor;
      job.index = index;
      job.scale = scale;
      job.kind = kind;
      jobs.push_back(job);
    }
  }
  return jobs;
}

std::string sweep_report_to_json(const SweepReport& sweep) {
  JsonWriter w;
  w.begin_object();
  w.field("modules", static_cast<std::uint64_t>(sweep.results.size()));
  w.field("total_tests", sweep.total_tests());
  w.key("results").begin_array();
  for (const auto& r : sweep.results) {
    w.begin_object();
    w.field("module", r.module_name);
    w.field("vendor", dram::vendor_name(r.job.vendor));
    w.field("kind", campaign_kind_name(r.job.kind));
    w.field("seed", derive_job_seed(r.job));
    w.field("tests", r.report.total_tests());
    w.field("victims",
            static_cast<std::uint64_t>(r.report.discovery.victims.size()));
    w.key("distances").begin_array();
    for (auto d : r.report.search.distances) w.value(d);
    w.end_array();
    w.field("cells_detected",
            static_cast<std::uint64_t>(r.report.all_detected().size()));
    if (r.job.kind == CampaignKind::kFullWithRandom) {
      w.field("random_tests", r.random.tests);
      w.field("random_cells", static_cast<std::uint64_t>(r.random.cells.size()));
    }
    w.field("sim_seconds", r.sim_elapsed.seconds());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace parbor::core
