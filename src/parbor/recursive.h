// Steps 2-4 of PARBOR (§5.2.2-§5.2.4): parallel recursive neighbour-region
// testing with distance aggregation and random-failure filtering.
//
// All victim rows are tested *simultaneously*: one "test" writes a
// victim-centred pattern into every victim row (all bits hold the victim's
// failing value except one candidate region, which holds the opposite
// value, with the victim bit itself always kept at the failing value),
// waits the test interval, and reads everything back.  A victim flips only
// if a strongly coupled physical neighbour sits inside its tested region.
//
// Regions are victim-relative *distances* (§5.2.2): testing distance d for
// a victim whose region index is g means testing absolute region g+d.  The
// recursion starts from the whole row (a single region, distance 0) and at
// each level subdivides every kept distance into `subdivision` subregions,
// testing each subregion serially — which reproduces the paper's test
// accounting t_i = N_{i-1} * S_i (Table 1).
#pragma once

#include "memctrl/host.h"
#include "parbor/types.h"

namespace parbor::core {

NeighborSearchResult find_neighbor_distances(mc::TestHost& host,
                                             const std::vector<Victim>& victims,
                                             const ParborConfig& config);

}  // namespace parbor::core
