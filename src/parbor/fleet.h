// Fleet-scale campaign service: sharded, crash-resumable, multi-process
// sweeps over a shared campaign directory.
//
// The paper characterises 18 modules on one host; a production deployment
// characterises a datacenter fleet under a rolling maintenance budget.  The
// unit of work is a shard — one (vendor, module, kind) campaign job — and
// the coordination substrate is nothing but a directory tree:
//
//   <dir>/manifest.json              the campaign spec + ordered shard list
//   <dir>/todo/<key>                 unclaimed shards   (common/leasedir)
//   <dir>/leases/<key>@<pid>         claimed shards     (common/leasedir)
//   <dir>/results/<key>.json         per-shard result checkpoint
//   <dir>/results/<key>.ledger.jsonl per-shard flip-ledger fragment (opt-in)
//   <dir>/fleet_sweep.json           the merged report (fleet merge)
//
// Any number of `fleet work` processes attach to the directory and drain
// the queue; claims are exactly-once by atomic rename (see leasedir.h).  A
// shard's result is checkpointed with an atomic whole-file replace when —
// and only when — the shard completes, so a SIGKILLed worker leaves either
// nothing or a finished checkpoint, never a torn one.  Recovery is built
// into every worker: stale leases (dead owner pid) with a checkpoint are
// released, those without are re-queued.  Completed shards are NEVER
// recomputed and never double-counted — the merge reads each checkpoint
// exactly once, in manifest order.
//
// Headline invariant: `fleet merge` output is byte-identical to
// `parbor_cli sweep` of the same spec, for every worker-process count,
// including runs where workers were killed and resumed mid-campaign.  It
// holds by construction: shards are deterministic pure functions of the
// manifest (per-job derived seeds), checkpoints carry the exact bytes
// sweep_result_to_json emits, and both serialisation paths order results
// by job_order_less.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dram/module.h"
#include "dram/scramble.h"
#include "parbor/engine.h"
#include "parbor/types.h"

namespace parbor::core {

// The campaign spec a manifest persists: everything needed to reconstruct
// the exact job list (and thus every derived seed) in any process.
struct FleetSpec {
  std::vector<dram::Vendor> vendors = {dram::Vendor::kA, dram::Vendor::kB,
                                       dram::Vendor::kC};
  std::vector<int> indices = {1, 2, 3, 4, 5, 6};
  dram::Scale scale = dram::Scale::kSmall;
  CampaignKind kind = CampaignKind::kSearchOnly;
  bool soft_errors = true;
  // Record a per-shard flip-ledger fragment next to each checkpoint
  // (ledger_check --fleet-dir proves closure over the union).
  bool ledger = false;
  std::uint64_t seed_base = SweepJob{}.seed_base;
  std::uint64_t config_seed = ParborConfig{}.seed;

  bool operator==(const FleetSpec&) const = default;
};

// One manifest entry: the shard key, its job, and its manifest index —
// which is also the shard's ledger job id, so fragments from different
// worker processes join like one sweep's ledger.
struct FleetShard {
  std::string key;
  SweepJob job;
  std::uint32_t index = 0;
};

// "A1-search": the (vendor, module, kind) identity, filename-safe.
std::string shard_key(const SweepJob& job);

// The spec's shard list, sorted by job_order_less (= manifest order =
// merge order).  Keys are checked unique.
std::vector<FleetShard> fleet_shards(const FleetSpec& spec);

// Manifest (de)serialisation; parsing rejects malformed documents loudly.
std::string fleet_manifest_to_json(const FleetSpec& spec);
FleetSpec fleet_manifest_from_json(const std::string& json);

// Creates the campaign directory: manifest, results/, and the work queue
// with one todo marker per shard.  Refuses to re-init an existing campaign.
void fleet_init(const std::string& dir, const FleetSpec& spec);

// Loads <dir>/manifest.json (CheckError if missing/malformed).
FleetSpec fleet_load_manifest(const std::string& dir);

struct FleetWorkerOptions {
  // Crash-test hook (also reachable via PARBOR_FLEET_DIE_AT from the CLI):
  // after `die_after_shards` completed shards the worker claims one more,
  // computes it, and SIGKILLs itself before writing any checkpoint — the
  // exact mid-shard crash the resume machinery must absorb.  < 0 disables.
  int die_after_shards = -1;
  // Stop after this many completed shards (< 0: drain the queue).
  int max_shards = -1;
  // Live meter + per-shard narration on stderr (telemetry ProgressMeter;
  // a resumed campaign's pre-existing checkpoints seed the done count).
  bool progress = false;
  // Publish heartbeats + metrics snapshots under <dir>/telemetry/ and
  // append to the campaign event log (see common/telemetry/campaign_obs).
  // Forces the global MetricsRegistry on for the worker's lifetime (the
  // ambient enabled-state is restored on return).  Advisory only: results
  // stay byte-identical with heartbeats on or off.
  bool heartbeat = false;
  // Crash-test hook (PARBOR_FLEET_DIE_AT_HEARTBEAT from the CLI): SIGKILL
  // while publishing the n-th heartbeat, after its tmp file is written
  // but before the rename — the window where a non-atomic publisher
  // would tear a snapshot.  < 0 disables.  Requires `heartbeat`.
  int die_at_heartbeat = -1;
};

struct FleetWorkerResult {
  std::size_t shards_run = 0;       // computed and checkpointed by us
  std::size_t requeued_stale = 0;   // recovered from dead workers
  std::size_t released_done = 0;    // stale leases whose checkpoint survived
};

// Claims and runs shards until the queue is drained (or max_shards).
// Safe to call from any number of processes concurrently; idempotent on a
// finished campaign (returns with shards_run == 0).
FleetWorkerResult fleet_work(const std::string& dir,
                             const FleetWorkerOptions& options = {});

enum class ShardState { kTodo, kClaimed, kDone };

struct FleetShardStatus {
  std::string key;
  ShardState state = ShardState::kTodo;
  std::int64_t owner_pid = 0;  // kClaimed only
  bool owner_alive = false;    // kClaimed only
  // Advisory wall-clock claim stamp from the lease body; 0 when the body
  // was never written (owner died between rename and write).  Lets a
  // status view show lease age — how long a dead owner has been sitting
  // on a shard.
  std::int64_t claimed_unix_ms = 0;  // kClaimed only
};

struct FleetStatus {
  std::size_t total = 0;
  std::size_t todo = 0;
  std::size_t claimed = 0;
  std::size_t done = 0;
  std::vector<FleetShardStatus> shards;  // manifest order
};

FleetStatus fleet_status(const std::string& dir);

// Folds every shard checkpoint into the sweep document (no trailing
// newline), byte-identical to sweep_report_to_json of a single-process run
// of the same spec.  CheckError if any shard is not yet checkpointed.
std::string fleet_merge(const std::string& dir, bool with_build_info = false);

// Sorted list of the ledger fragment paths of a campaign directory.
std::vector<std::string> fleet_ledger_fragments(const std::string& dir);

}  // namespace parbor::core
