// §7.3 extension: detecting the neighbour locations of remapped cells.
//
// PARBOR's parallel recursion deliberately discards infrequent distances —
// they are usually noise.  But cells repaired onto redundant columns are
// REAL data-dependent cells whose neighbours live at irregular distances
// (the adjacent spares' aliased addresses).  The paper sketches the fix:
// treat the infrequent evidence intelligently instead of dropping it.
//
// This module implements that extension:
//  1. verify_regularity(): one test that puts the worst-case value at every
//     main-set distance around a victim; a regular victim flips, an
//     irregular one does not.
//  2. find_individual_neighbors(): a per-victim recursive region search —
//     no ranking needed, since a single strongly coupled victim fails
//     exactly where its neighbour region is tested.
//  3. detect_irregular_victims(): screens a victim set with (1) and maps
//     each irregular survivor with (2).
#pragma once

#include "memctrl/host.h"
#include "parbor/types.h"

namespace parbor::core {

// True if the victim flips when every bit at a main-set signed distance
// from it holds the opposite value (i.e. the victim obeys the regular
// mapping).  Costs one test.
bool verify_regularity(mc::TestHost& host, const Victim& victim,
                       const std::set<std::int64_t>& signed_distances,
                       std::uint64_t* tests = nullptr);

// Recursively narrows the neighbour regions of ONE victim.  Returns the
// signed bit distances of every region that kept failing down to size 1.
// Reliable for strongly coupled victims; weakly coupled ones may lose their
// signal once the two neighbours fall into different regions (documented
// paper limitation).
std::set<std::int64_t> find_individual_neighbors(
    mc::TestHost& host, const Victim& victim, std::uint32_t subdivision = 8,
    std::uint64_t* tests = nullptr);

struct IrregularVictim {
  Victim victim;
  std::set<std::int64_t> distances;  // personal neighbour distances
};

struct RemapDetectionResult {
  std::vector<IrregularVictim> irregular;
  std::uint64_t tests = 0;
};

// Screens `victims` against the main search result and individually maps
// the ones that do not obey the regular distance set.
RemapDetectionResult detect_irregular_victims(
    mc::TestHost& host, const std::vector<Victim>& victims,
    const NeighborSearchResult& main_result,
    const ParborConfig& config = {});

}  // namespace parbor::core
