// Fleet campaign monitoring: aggregates the worker heartbeats, the event
// log, and the shard queue state into one live campaign view.
//
// The view layer is split from the rendering loop so every piece stays
// testable without a terminal or a clock:
//
//  - `fleet_monitor_view(dir, watchdog_s, now_unix_ms)` is a pure
//    function of the campaign directory contents and the caller's notion
//    of "now" — tests pass fixed timestamps and get deterministic views;
//  - `render_fleet_view` turns a view into the `fleet_top` text page;
//  - `fleet_view_to_prom` turns it into a Prometheus exposition (the
//    merged worker metrics plus synthetic campaign-level gauges);
//  - `run_fleet_monitor` is the thin refresh loop behind
//    `parbor_cli fleet monitor` and `tools/fleet_top`.
//
// Health model: a worker is DEAD when its snapshot pid no longer exists,
// and STALLED when the pid is alive but its last heartbeat is older than
// the watchdog window (heartbeats are published at shard boundaries, so
// a stall means a shard has been computing suspiciously long — or the
// worker is wedged).  Both are advisory; the lease protocol alone decides
// reclamation.  Everything here only reads the campaign directory.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/telemetry/campaign_obs.h"
#include "common/telemetry/metrics.h"
#include "parbor/fleet.h"

namespace parbor::core {

struct FleetWorkerView {
  telemetry::WorkerSnapshot snapshot;
  bool alive = false;
  bool stalled = false;          // alive, but heartbeat older than watchdog
  double heartbeat_age_s = 0.0;  // now - snapshot.unix_ms
};

struct FleetMonitorView {
  FleetStatus status;
  std::vector<FleetWorkerView> workers;  // sorted by owner
  std::vector<telemetry::CampaignEvent> events;

  // Merged over every worker snapshot (see merge_metrics_snapshots).
  telemetry::MetricsRegistry::Snapshot metrics;
  std::uint64_t jobs_done = 0;  // merged engine.jobs_done
  std::uint64_t flips = 0;      // merged engine.flips
  std::uint64_t tests = 0;      // merged host.tests

  std::size_t workers_alive = 0;
  std::size_t workers_dead = 0;
  std::size_t workers_stalled = 0;
  std::size_t stale_takeovers = 0;  // stale_requeue events logged

  std::int64_t now_unix_ms = 0;
  // Earliest event/heartbeat stamp; 0 when the campaign is unobserved.
  std::int64_t campaign_start_ms = 0;
  double elapsed_s = 0.0;  // since campaign_start_ms; 0 when unknown

  bool complete() const { return status.total > 0 && status.done == status.total; }
};

// Snapshot of the campaign as of `now_unix_ms`.  Tolerant by design:
// missing telemetry (unobserved campaign), torn snapshots, and truncated
// event logs all yield a view, never an error.  CheckError only for a
// directory that is not a campaign at all.
FleetMonitorView fleet_monitor_view(const std::string& dir,
                                    double watchdog_s,
                                    std::int64_t now_unix_ms);

// The human page: summary line, progress/ETA meter line, worker table,
// event tally — and, when every shard is checkpointed, the final
// "campaign complete: N/N shards checkpointed" line CI greps for.
std::string render_fleet_view(const FleetMonitorView& view);

// Merged worker metrics plus campaign-level gauges
// (parbor_fleet_campaign_shards{state=...}, ..._workers{state=...},
// ..._complete) in the exposition format.
std::string fleet_view_to_prom(const FleetMonitorView& view);

struct FleetMonitorOptions {
  std::string dir;
  bool once = false;       // render one view and exit
  int interval_ms = 2000;  // refresh period
  double watchdog_s = 30.0;
  std::string prom_out;      // rewrite this exposition file every refresh
  bool clear_screen = false;  // top-style full-screen refresh
};

// Renders to stdout every interval until the campaign completes (or
// immediately with `once`).  Returns 0; sink failures print and return 1.
int run_fleet_monitor(const FleetMonitorOptions& options);

}  // namespace parbor::core
