#include "parbor/fleet_monitor.h"

#include <chrono>
#include <cstdio>
#include <thread>

#include "common/fileio.h"
#include "common/leasedir.h"
#include "common/table.h"
#include "common/telemetry/progress.h"
#include "common/telemetry/prom.h"

namespace parbor::core {

namespace {

std::uint64_t counter_value(const telemetry::MetricsRegistry::Snapshot& snap,
                            const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  return 0;
}

std::string format_age(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1fs", seconds);
  return buf;
}

}  // namespace

FleetMonitorView fleet_monitor_view(const std::string& dir,
                                    double watchdog_s,
                                    std::int64_t now_unix_ms) {
  FleetMonitorView view;
  view.now_unix_ms = now_unix_ms;
  view.status = fleet_status(dir);
  view.events = telemetry::read_campaign_events(dir);

  std::vector<telemetry::MetricsRegistry::Snapshot> snapshots;
  for (auto& snapshot : telemetry::read_worker_snapshots(dir)) {
    FleetWorkerView w;
    w.alive = leasedir::pid_alive(snapshot.pid);
    w.heartbeat_age_s =
        static_cast<double>(now_unix_ms - snapshot.unix_ms) / 1000.0;
    // A worker that reported its exit heartbeat is finished, not stalled —
    // its snapshot will age forever by design.
    w.stalled = w.alive && snapshot.phase != "exit" &&
                w.heartbeat_age_s > watchdog_s;
    if (!w.alive) {
      ++view.workers_dead;
    } else if (w.stalled) {
      ++view.workers_stalled;
    } else {
      ++view.workers_alive;
    }
    if (view.campaign_start_ms == 0 ||
        snapshot.unix_ms < view.campaign_start_ms) {
      view.campaign_start_ms = snapshot.unix_ms;
    }
    snapshots.push_back(snapshot.metrics);
    w.snapshot = std::move(snapshot);
    view.workers.push_back(std::move(w));
  }
  view.metrics = telemetry::merge_metrics_snapshots(snapshots);
  view.jobs_done = counter_value(view.metrics, "engine.jobs_done");
  view.flips = counter_value(view.metrics, "engine.flips");
  view.tests = counter_value(view.metrics, "host.tests");

  for (const auto& event : view.events) {
    if (event.type == "stale_requeue") ++view.stale_takeovers;
    if (view.campaign_start_ms == 0 ||
        event.unix_ms < view.campaign_start_ms) {
      view.campaign_start_ms = event.unix_ms;
    }
  }
  if (view.campaign_start_ms > 0 && now_unix_ms > view.campaign_start_ms) {
    view.elapsed_s =
        static_cast<double>(now_unix_ms - view.campaign_start_ms) / 1000.0;
  }
  return view;
}

std::string render_fleet_view(const FleetMonitorView& view) {
  std::string out;
  char buf[256];

  std::snprintf(buf, sizeof buf,
                "fleet campaign: %zu shard(s) — %zu done, %zu claimed, "
                "%zu todo\n",
                view.status.total, view.status.done, view.status.claimed,
                view.status.todo);
  out += buf;

  // The engine meter line, driven by shard completion: running = shards
  // claimed by live workers, ETA extrapolated from campaign elapsed time.
  std::size_t running = 0;
  for (const auto& shard : view.status.shards) {
    if (shard.state == ShardState::kClaimed && shard.owner_alive) ++running;
  }
  out += telemetry::format_progress_line("fleet", view.status.done,
                                         view.status.total, running,
                                         view.flips, view.elapsed_s);
  out += '\n';
  if (view.elapsed_s > 0.0) {
    std::snprintf(buf, sizeof buf, "rate: %.2f shards/s, %.1f flips/s\n",
                  static_cast<double>(view.status.done) / view.elapsed_s,
                  static_cast<double>(view.flips) / view.elapsed_s);
    out += buf;
  }

  if (!view.workers.empty()) {
    Table table({"Worker", "State", "Phase", "Shard", "Heartbeat", "Done"});
    for (const auto& w : view.workers) {
      const char* state = "alive";
      if (!w.alive) state = "dead";
      else if (w.stalled) state = "STALLED";
      table.add(w.snapshot.owner, state, w.snapshot.phase, w.snapshot.shard,
                format_age(w.heartbeat_age_s),
                std::to_string(w.snapshot.shards_done));
    }
    out += table.to_string();
    std::snprintf(buf, sizeof buf,
                  "workers: %zu alive, %zu dead, %zu stalled\n",
                  view.workers_alive, view.workers_dead,
                  view.workers_stalled);
    out += buf;
  }

  // Shards held by dead or heartbeat-less owners deserve their own lines:
  // they are exactly what the next worker's reclaim pass will take over.
  for (const auto& shard : view.status.shards) {
    if (shard.state != ShardState::kClaimed || shard.owner_alive) continue;
    std::string line = "dead owner: shard " + shard.key + " leased to pid " +
                       std::to_string(shard.owner_pid);
    if (shard.claimed_unix_ms > 0 &&
        view.now_unix_ms > shard.claimed_unix_ms) {
      line += " (lease age " +
              format_age(static_cast<double>(view.now_unix_ms -
                                             shard.claimed_unix_ms) /
                         1000.0) +
              ")";
    }
    out += line + "\n";
  }

  if (!view.events.empty() || view.stale_takeovers > 0) {
    std::snprintf(buf, sizeof buf,
                  "events: %zu logged, %zu stale takeover(s)\n",
                  view.events.size(), view.stale_takeovers);
    out += buf;
  }

  if (view.complete()) {
    std::snprintf(buf, sizeof buf,
                  "campaign complete: %zu/%zu shards checkpointed\n",
                  view.status.done, view.status.total);
    out += buf;
  }
  return out;
}

std::string fleet_view_to_prom(const FleetMonitorView& view) {
  std::string out = telemetry::metrics_to_prom(view.metrics);
  // Label values go through prom_label_escape even when static, so a
  // future dynamic label (worker id, campaign name) is safe by
  // construction rather than by review.
  const auto state_sample = [&out](const char* metric,
                                   const std::string& state,
                                   std::size_t value) {
    out += std::string(metric) + "{state=\"" +
           telemetry::prom_label_escape(state) + "\"} " +
           std::to_string(value) + "\n";
  };
  out += "# TYPE parbor_fleet_campaign_shards gauge\n";
  state_sample("parbor_fleet_campaign_shards", "todo", view.status.todo);
  state_sample("parbor_fleet_campaign_shards", "claimed",
               view.status.claimed);
  state_sample("parbor_fleet_campaign_shards", "done", view.status.done);
  out += "# TYPE parbor_fleet_campaign_workers gauge\n";
  state_sample("parbor_fleet_campaign_workers", "alive",
               view.workers_alive);
  state_sample("parbor_fleet_campaign_workers", "dead", view.workers_dead);
  state_sample("parbor_fleet_campaign_workers", "stalled",
               view.workers_stalled);
  out += "# TYPE parbor_fleet_campaign_complete gauge\n";
  out += std::string("parbor_fleet_campaign_complete ") +
         (view.complete() ? "1" : "0") + "\n";
  return out;
}

int run_fleet_monitor(const FleetMonitorOptions& options) {
  int rc = 0;
  while (true) {
    const auto view = fleet_monitor_view(options.dir, options.watchdog_s,
                                         telemetry::unix_now_ms());
    if (options.clear_screen) std::fputs("\033[H\033[2J", stdout);
    std::fputs(render_fleet_view(view).c_str(), stdout);
    std::fflush(stdout);
    if (!options.prom_out.empty()) {
      if (const auto err =
              write_text_file(options.prom_out, fleet_view_to_prom(view));
          !err.empty()) {
        std::fprintf(stderr, "--prom-out: %s\n", err.c_str());
        rc = 1;
      }
    }
    if (options.once || view.complete() || rc != 0) break;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options.interval_ms));
  }
  return rc;
}

}  // namespace parbor::core
