// Step 1 of PARBOR (§5.2.1): determine the initial set of victim cells.
//
// The module is tested with several random data patterns, each accompanied
// by its inverse (true-/anti-cell coverage).  A cell is a *data-dependent
// candidate* if there exist two tests that wrote the SAME data value into it
// where the cell failed in one and survived the other — the only thing that
// changed is the surrounding content.  Cells that fail whenever a given
// value is written (weak cells) and cells that never fail are excluded.
// Marginal/random failures can slip into the set; the recursion's filtering
// (§5.2.4) deals with them later.
#pragma once

#include "memctrl/host.h"
#include "parbor/types.h"

namespace parbor::core {

// Runs 2 * config.discovery_patterns broadcast tests and returns at most
// config.max_victims victims, at most one per row (parallel recursion tests
// one victim per row).
DiscoveryReport discover_victims(mc::TestHost& host,
                                 const ParborConfig& config);

}  // namespace parbor::core
