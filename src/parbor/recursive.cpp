#include "parbor/recursive.h"

#include <algorithm>

#include "common/bitvec.h"
#include "common/check.h"
#include "common/ledger/ledger.h"
#include "common/telemetry/progress.h"
#include "common/telemetry/trace.h"

namespace parbor::core {

std::vector<std::uint32_t> level_region_sizes(std::uint32_t row_bits,
                                              std::uint32_t subdivision) {
  PARBOR_CHECK(row_bits >= 2 && subdivision >= 2);
  std::vector<std::uint32_t> sizes;
  std::uint32_t size = row_bits / 2;  // L1 splits the row in half
  sizes.push_back(size);
  while (size > 1) {
    size = std::max<std::uint32_t>(1, size / subdivision);
    sizes.push_back(size);
  }
  return sizes;
}

namespace {

// State of one victim during the recursion.
struct VictimState {
  Victim v;
  bool discarded = false;  // dropped as marginal
  int fails_this_level = 0;
  std::vector<std::int64_t> distances_this_level;
};

}  // namespace

NeighborSearchResult find_neighbor_distances(mc::TestHost& host,
                                             const std::vector<Victim>& victims,
                                             const ParborConfig& config) {
  NeighborSearchResult result;
  const std::uint32_t row_bits = host.row_bits();
  const auto sizes = level_region_sizes(row_bits, config.subdivision);

  std::vector<VictimState> states;
  states.reserve(victims.size());
  for (const Victim& v : victims) states.push_back({v, false, 0, {}});

  // Distances kept at the previous level, in previous-level region units.
  // Level 0 is the virtual whole-row level: one region, distance 0.
  std::vector<std::int64_t> prev_found{0};
  std::uint32_t prev_size = row_bits;

  BitVec pattern(row_bits);
  for (std::size_t li = 0; li < sizes.size(); ++li) {
    const std::uint32_t size = sizes[li];
    const std::uint32_t subdiv = prev_size / size;
    const auto regions_at_level = static_cast<std::int64_t>(row_bits / size);

    RecursionLevel level;
    level.level = static_cast<int>(li + 1);
    level.region_size = size;

    telemetry::TraceSpan span("parbor.search.level");
    span.note("level", level.level);
    span.note("region_size", level.region_size);
    if (ledger::FlipLedger::global().enabled()) {
      ledger::set_pattern("L" + std::to_string(level.level));
    }
    if (telemetry::phase_progress()) {
      telemetry::phase_note("search level " + std::to_string(level.level) +
                            " (region size " +
                            std::to_string(level.region_size) + ")");
    }

    for (auto& s : states) {
      s.fails_this_level = 0;
      s.distances_this_level.clear();
    }

    // One test per (previous-level distance, subregion index) pair, run on
    // all victim rows simultaneously.
    for (std::int64_t d_prev : prev_found) {
      for (std::uint32_t j = 0; j < subdiv; ++j) {
        std::vector<mc::RowPattern> rows;
        std::vector<BitVec> storage;
        std::vector<VictimState*> tested;
        storage.reserve(states.size());
        for (auto& s : states) {
          if (s.discarded) continue;
          const std::int64_t prev_region = s.v.sys_bit / prev_size;
          const std::int64_t region =
              (prev_region + d_prev) * subdiv + static_cast<std::int64_t>(j);
          if (region < 0 || region >= regions_at_level) continue;

          pattern.fill(s.v.fail_data);
          pattern.set_range(static_cast<std::size_t>(region) * size,
                            static_cast<std::size_t>(region + 1) * size,
                            !s.v.fail_data);
          // The victim always holds its failing value, even when its own
          // region is the one under test.
          pattern.set(s.v.sys_bit, s.v.fail_data);
          storage.push_back(pattern);
          tested.push_back(&s);
        }
        rows.reserve(storage.size());
        for (std::size_t i = 0; i < storage.size(); ++i) {
          rows.push_back({tested[i]->v.addr, &storage[i]});
        }
        const auto flips = host.run_test(rows);
        ++level.tests;

        // Which victims flipped?
        std::set<mc::FlipRecord> flip_set(flips.begin(), flips.end());
        for (VictimState* s : tested) {
          if (!flip_set.contains({s->v.addr, s->v.sys_bit})) continue;
          ++s->fails_this_level;
          const std::int64_t victim_region = s->v.sys_bit / size;
          const std::int64_t prev_region = s->v.sys_bit / prev_size;
          const std::int64_t tested_region =
              (prev_region + d_prev) * subdiv + static_cast<std::int64_t>(j);
          s->distances_this_level.push_back(tested_region - victim_region);
        }
      }
    }

    // §5.2.4 step 1: a victim that failed in most of the level's tests is a
    // marginal cell, not a data-dependent one; drop all its evidence.  A
    // strongly coupled cell has exactly one neighbour region per level, so
    // failing in (almost) every test is incompatible with data dependence.
    const auto tests_at_level = static_cast<double>(level.tests);
    if (config.enable_marginal_discard) {
      // A strongly coupled victim legitimately fails once per level (its
      // one neighbour region), so the cutoff never drops below one failure.
      const double cutoff = std::max(
          1.0, config.marginal_discard_frac * tests_at_level);
      for (auto& s : states) {
        if (s.discarded) continue;
        if (tests_at_level >= 4.0 && s.fails_this_level > cutoff) {
          s.discarded = true;  // enough evidence: drop permanently
        }
      }
    }

    // Aggregate the surviving evidence and rank (§5.2.4 step 2).  Victims
    // that failed in every test of a short level (e.g. both L1 halves)
    // carry no locational information and are suppressed for this level
    // only.
    for (const auto& s : states) {
      if (s.discarded) continue;
      if (level.tests >= 2 &&
          s.fails_this_level >= static_cast<int>(level.tests)) {
        continue;
      }
      for (auto d : s.distances_this_level) level.ranking.add(d);
    }
    if (config.enable_ranking_filter) {
      level.found = level.ranking.keys_above(config.rank_threshold);
      std::erase_if(level.found, [&](std::int64_t d) {
        return level.ranking.count(d) < 2;
      });
    } else {
      level.found = level.ranking.keys_above(0.0);
    }

    span.note("tests", level.tests);
    span.note("found", level.found.size());
    result.tests += level.tests;
    prev_found = level.found;
    prev_size = size;
    result.levels.push_back(std::move(level));
    if (prev_found.empty()) break;  // nothing data-dependent left to chase
  }

  if (!result.levels.empty() && result.levels.back().region_size == 1) {
    for (auto d : result.levels.back().found) result.distances.insert(d);
  }
  return result;
}

}  // namespace parbor::core
