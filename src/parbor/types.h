// Core types of the PARBOR algorithm (paper §5).
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "common/stats.h"
#include "memctrl/host.h"

namespace parbor::core {

// A cell from the initial victim set: it exhibited a data-dependent failure
// when holding `fail_data` at system bit `sys_bit` of its row.
struct Victim {
  mc::RowAddr addr;
  std::uint32_t sys_bit = 0;
  bool fail_data = true;

  auto operator<=>(const Victim&) const = default;
};

struct ParborConfig {
  // Region sizes per recursion level are derived from the row size:
  // L1 halves the row, later levels divide by `subdivision` down to size 1
  // (8K rows -> 4096, 512, 64, 8, 1 exactly as in §7.1).
  std::uint32_t subdivision = 8;
  // Keep only distances whose frequency is at least this fraction of the
  // most frequent distance at each level, and seen at least twice
  // (§5.2.4 ranking filter).
  double rank_threshold = 0.05;
  // Drop victims that fail in more than this fraction of a level's tests:
  // they behave like marginal cells, not data-dependent ones (§5.2.4).  A
  // strongly coupled victim fails exactly one region test per level, so
  // this can be aggressive.
  double marginal_discard_frac = 0.15;
  // Cap on the initial victim sample size (§7.3 studies 1K..15K).
  std::size_t max_victims = 16384;
  // Ablation switches for the §5.2.4 filtering machinery (both on in the
  // real algorithm; the ablation benches measure what happens without).
  bool enable_ranking_filter = true;
  bool enable_marginal_discard = true;
  // Random patterns used to build the initial victim set; each is also run
  // inverted, so the discovery costs 2x this many tests (paper budgets 10).
  int discovery_patterns = 5;
  std::uint64_t seed = 0x9a7b05eedULL;
};

// Region sizes for each recursion level given the row size, e.g.
// 8192 -> {4096, 512, 64, 8, 1}.
std::vector<std::uint32_t> level_region_sizes(std::uint32_t row_bits,
                                              std::uint32_t subdivision = 8);

struct DiscoveryReport {
  std::vector<Victim> victims;
  // Every cell observed to flip during the discovery tests (these already
  // count as detected failures for the campaign accounting).
  std::set<mc::FlipRecord> observed;
  std::uint64_t tests = 0;
};

struct RecursionLevel {
  int level = 0;                       // 1-based
  std::uint32_t region_size = 0;       // bits per region at this level
  std::uint32_t tests = 0;             // tests performed at this level
  FrequencyTable ranking;              // raw (victim, distance) frequencies
  std::vector<std::int64_t> found;     // distances kept after ranking
};

struct NeighborSearchResult {
  std::vector<RecursionLevel> levels;
  // Final neighbour distances in system bit addresses (signed).
  std::set<std::int64_t> distances;
  std::uint64_t tests = 0;

  std::set<std::int64_t> abs_distances() const {
    std::set<std::int64_t> out;
    for (auto d : distances) out.insert(d < 0 ? -d : d);
    return out;
  }
};

}  // namespace parbor::core
