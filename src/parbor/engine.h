// CampaignEngine: parallel multi-module characterisation sweeps.
//
// The paper's evaluation spans 18 modules × 3 vendors, and every campaign on
// one module is independent of every other — the classic embarrassingly
// parallel shape of DRAM characterisation (one SoftMC/FPGA host per module).
// The engine fans one job per (vendor, index, scale, campaign-kind) tuple
// across a fixed thread pool and aggregates the per-job reports into a
// SweepReport whose contents are bit-identical for every worker count.
//
// Determinism rule: a job never touches shared RNG state.  Each job builds
// its own Module (seeded by make_module_config from vendor/index/seed_base)
// and runs PARBOR with a ParborConfig whose seed is derived from the job
// tuple by derive_job_seed() — a pure function of (base seed, vendor, index,
// kind), so no scheduling decision, worker count, or completion order can
// perturb any stream.  Results land in per-job slots ordered by submission.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/sim_time.h"
#include "common/threadpool.h"
#include "dram/module.h"
#include "dram/scramble.h"
#include "parbor/fullchip.h"
#include "parbor/parbor.h"
#include "parbor/types.h"

namespace parbor::core {

enum class CampaignKind {
  kSearchOnly,      // steps 1-4: victim discovery + recursive search
  kFullPipeline,    // + neighbour-aware full-chip detection campaign
  kFullWithRandom,  // + the equal-budget random baseline (Figs. 12/13)
};

const char* campaign_kind_name(CampaignKind kind);
// Inverse of campaign_kind_name; nullopt for unknown names (fleet
// manifests and `--mode` flags round-trip kinds through these).
std::optional<CampaignKind> campaign_kind_from_name(std::string_view name);

struct SweepJob {
  dram::Vendor vendor = dram::Vendor::kA;
  int index = 1;  // 1-based module index within the vendor
  dram::Scale scale = dram::Scale::kSmall;
  CampaignKind kind = CampaignKind::kSearchOnly;
  double temperature_c = 45.0;  // nominal test temperature (§6)
  // Soft-error injection toggle.  Disabling it (parbor_cli --no-soft) makes
  // every flip attributable to an injected fault, which is how ledger_check
  // proves closure.  A model toggle like temperature: deliberately excluded
  // from derive_job_seed.
  bool soft_errors = true;
  ParborConfig config{};        // config.seed is the base of the derived stream
  std::uint64_t seed_base = 0x5eed;  // population seed (module fault maps)
};

// The per-job ParborConfig seed: a stable pure function of the job tuple,
// so every module gets its own independent stream (never a shared one) and
// the result is invariant under scheduling.
std::uint64_t derive_job_seed(const SweepJob& job);

// Canonical job order: (vendor, index, kind), the identity tuple a fleet
// shard key names.  Report serialisation and the fleet manifest both sort
// by this, which is what makes a merged fleet report byte-identical to a
// single-process sweep regardless of submission or completion order.
bool job_order_less(const SweepJob& a, const SweepJob& b);

struct SweepJobResult {
  SweepJob job;
  std::string module_name;
  ParborReport report;
  // Geometry and ground truth from the simulated device, for benches.
  std::uint32_t row_bits = 0;
  std::string scrambler_name;
  std::set<std::int64_t> truth_distances;
  // Equal-budget random baseline; only run for kFullWithRandom.
  CampaignResult random;
  // Simulated cost of this job's campaigns.
  SimTime sim_elapsed;
  std::uint64_t row_operations = 0;
  // Host wall-clock cost of the job (module build + campaigns).
  double wall_seconds = 0.0;
};

struct SweepReport {
  std::vector<SweepJobResult> results;  // submission order, always
  std::size_t workers = 1;
  double wall_seconds = 0.0;  // whole-sweep wall clock

  std::uint64_t total_tests() const;
  SimTime total_sim_time() const;
};

class CampaignEngine {
 public:
  // `workers` == 0 selects one worker per hardware thread.
  explicit CampaignEngine(std::size_t workers = 0) : pool_(workers) {}

  std::size_t workers() const { return pool_.worker_count(); }

  // Sweep-level options that do not affect results: telemetry and the live
  // stderr progress line.
  struct RunOptions {
    bool progress = false;
  };

  // Runs every job and blocks until all finished.  results[i] always
  // corresponds to jobs[i].  The first job failure (lowest index) is
  // rethrown after the sweep drains.
  SweepReport run(const std::vector<SweepJob>& jobs);
  SweepReport run(const std::vector<SweepJob>& jobs,
                  const RunOptions& options);

  // Runs one job synchronously on the calling thread (also what each
  // worker executes).  Exposed so tests can pin down single-job behaviour.
  static SweepJobResult run_job(const SweepJob& job);

  // run_job plus the full per-job observability wrapping — ledger JobScope,
  // engine.job trace span on its own track, engine.jobs_done/flips/wall
  // metrics.  The unit of execution shared by the in-process sweep and the
  // fleet worker, so a fleet shard reports through exactly the same
  // counters and spans as a pooled job.  `job_index` is the ledger job id
  // (sweep: submission index; fleet: manifest index).
  static SweepJobResult run_job_instrumented(const SweepJob& job,
                                             std::uint32_t job_index);

 private:
  ThreadPool pool_;
};

// One job per module of the paper's 18-module population (A1..C6), or of
// the given vendors/indices subset.
std::vector<SweepJob> make_population_jobs(
    dram::Scale scale, CampaignKind kind,
    const std::vector<dram::Vendor>& vendors = {dram::Vendor::kA,
                                                dram::Vendor::kB,
                                                dram::Vendor::kC},
    const std::vector<int>& indices = {1, 2, 3, 4, 5, 6});

// Sweep summary as one JSON document (module entries sorted by
// job_order_less — stable, so duplicate tuples keep submission order — and
// wall-clock fields excluded, so the document is reproducible and
// independent of submission, scheduling, and completion order).
// `with_build_info` prepends a "build" provenance object — off by default
// so two binaries of different commits can still be compared byte-wise.
std::string sweep_report_to_json(const SweepReport& sweep,
                                 bool with_build_info = false);

// One result as the JSON object sweep_report_to_json puts in "results".
// The fleet worker checkpoints exactly these bytes per shard, and the
// fleet merge splices them back verbatim — byte-identity of the merged
// report falls out of sharing this writer.
std::string sweep_result_to_json(const SweepJobResult& result);

// Assembles the sweep document from pre-serialised result objects (each a
// sweep_result_to_json string, already in canonical order).
std::string assemble_sweep_json(const std::vector<std::string>& result_objects,
                                std::uint64_t total_tests,
                                bool with_build_info);

}  // namespace parbor::core
