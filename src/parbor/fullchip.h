// Full-chip data-dependent failure detection (§5.2.5, §7.2): runs the
// neighbour-aware round patterns (and their inverses) over the whole module
// and collects every cell that flipped.
#pragma once

#include <set>

#include "memctrl/host.h"
#include "parbor/patterns.h"

namespace parbor::core {

struct CampaignResult {
  std::set<mc::FlipRecord> cells;  // distinct failing cells observed
  std::uint64_t tests = 0;
};

CampaignResult run_fullchip_test(mc::TestHost& host, const RoundPlan& plan);

}  // namespace parbor::core
