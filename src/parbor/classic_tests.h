// Classical memory-test baselines (§2.3 manufacturing tests, §9 BIST
// discussion): March C- and a neighbourhood pattern-sensitive fault (NPSF)
// test that assumes UNSCRAMBLED adjacency.
//
// Both are retention-aware variants: after each write element the content
// sits for the host's test interval before being read back, the way
// manufacturers test data-dependent failures at minimum charge (§2.3).
// Their blind spot is exactly the paper's motivation: without knowledge of
// the internal address mapping, "neighbouring" system addresses are not
// neighbouring cells, so the NPSF worst-case pattern never lands on the
// real physical neighbourhood.
#pragma once

#include "memctrl/host.h"
#include "parbor/fullchip.h"

namespace parbor::core {

// March C- adapted to row-granularity system-level testing:
//   up(w0); up(r0,w1); up(r1,w0); down(r0,w1); down(r1,w0); down(r0)
// with a retention pause before every read element.  Catches stuck-at,
// transition, and retention (weak-cell) faults; coupling faults only if
// they happen to be excited by solid content (they are not, by §2.3).
CampaignResult run_march_cm_campaign(mc::TestHost& host);

// Type-1 (row-neighbourhood) NPSF sweep assuming system-address adjacency:
// every bit is tested with its system-space ±distance neighbours holding
// the opposite value, for each distance in `assumed_distances` (default:
// the unscrambled {1}).  This is what BIST schemes that "know" the layout
// run; at the system level the assumption is wrong for scrambled parts.
CampaignResult run_npsf_campaign(
    mc::TestHost& host,
    const std::set<std::int64_t>& assumed_distances = {1});

}  // namespace parbor::core
