// Retention profiling (the RAIDR-style measurement DC-REF builds on).
//
// DC-REF (§8) needs to know which rows contain cells that cannot survive
// the relaxed 256 ms refresh interval under worst-case content.  RAIDR
// obtains this with retention profiling; the paper measures 16.4% of rows
// on its chips.  This module runs that profiling on the simulated module:
// neighbour-aware worst-case patterns (from PARBOR's distance set) plus
// solid patterns are held for the relaxed interval, and any row that drops
// a bit goes into the fast-refresh bin.
#pragma once

#include <set>

#include "common/sim_time.h"
#include "memctrl/host.h"
#include "parbor/patterns.h"

namespace parbor::core {

struct RetentionProfile {
  // Rows that must stay on the fast (nominal) refresh schedule.
  std::set<mc::RowAddr> fast_rows;
  std::uint64_t rows_total = 0;
  std::uint64_t tests = 0;

  double fast_fraction() const {
    return rows_total == 0
               ? 0.0
               : static_cast<double>(fast_rows.size()) /
                     static_cast<double>(rows_total);
  }
};

// Profiles the module at `relaxed_interval` (default 256 ms, RAIDR's slow
// bin).  `plan` supplies the worst-case neighbour-aware rounds; solid
// all-0/all-1 rounds cover plain retention loss.
RetentionProfile profile_retention(mc::TestHost& host, const RoundPlan& plan,
                                   SimTime relaxed_interval = SimTime::ms(256));

}  // namespace parbor::core
