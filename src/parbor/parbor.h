// PARBOR: PArallel Recursive neighBOR testing — public API facade.
//
// Usage:
//   dram::Module module(dram::make_module_config(dram::Vendor::kA, 1,
//                                                dram::Scale::kMedium));
//   mc::TestHost host(module);
//   core::ParborReport report = core::run_parbor(host, {});
//   // report.search.distances   -> neighbour locations in system space
//   // report.fullchip.cells     -> every data-dependent failure detected
//   // report.total_tests()      -> end-to-end test budget
#pragma once

#include "memctrl/host.h"
// archlint: allow(unused-include) -- facade: re-exports the pipeline API
#include "parbor/baselines.h"
#include "parbor/fullchip.h"
#include "parbor/patterns.h"
// archlint: allow(unused-include) -- facade: re-exports the pipeline API
#include "parbor/recursive.h"
#include "parbor/types.h"
// archlint: allow(unused-include) -- facade: re-exports the pipeline API
#include "parbor/victims.h"

namespace parbor::core {

struct ParborReport {
  DiscoveryReport discovery;
  NeighborSearchResult search;
  RoundPlan plan;
  CampaignResult fullchip;

  std::uint64_t total_tests() const {
    return discovery.tests + search.tests + fullchip.tests;
  }

  // Every failing cell the whole pipeline observed (discovery + full-chip
  // campaign) — the paper's "failures detected by PARBOR".
  std::set<mc::FlipRecord> all_detected() const {
    std::set<mc::FlipRecord> out = discovery.observed;
    out.insert(fullchip.cells.begin(), fullchip.cells.end());
    return out;
  }
};

// Runs the complete five-step pipeline (§5.1): victim discovery, parallel
// recursive neighbour search with filtering, and the neighbour-aware
// full-chip failure detection campaign.
ParborReport run_parbor(mc::TestHost& host, const ParborConfig& config = {});

// Steps 1-4 only: determine the neighbour distance set (used by DC-REF and
// by callers that bring their own detection campaign).
ParborReport run_parbor_search_only(mc::TestHost& host,
                                    const ParborConfig& config = {});

}  // namespace parbor::core
