// Report exporters — the release-artifact equivalent of the paper's
// per-chip data release (§6 "Source Code and Data Release").
//
// A ParborReport serialises to JSON (full detail: per-level rankings,
// distances, test budgets, every detected cell optionally) and the failing
// cells to CSV for spreadsheet-style analysis.
#pragma once

#include <iosfwd>
#include <string>

#include "parbor/parbor.h"

namespace parbor::core {

struct ReportIoOptions {
  // Cell lists can be large; off by default for JSON.
  bool include_cells = false;
  // Module metadata to stamp into the report.
  std::string module_name;
  std::string vendor;
};

// Full characterisation report as a single JSON document.
std::string report_to_json(const ParborReport& report,
                           const ReportIoOptions& options = {});

// Detected failing cells, one line per cell:
//   chip,bank,row,sys_bit
void write_cells_csv(std::ostream& os, const std::set<mc::FlipRecord>& cells);

// Per-level recursion summary:
//   level,region_size,tests,distance,count,kept
void write_ranking_csv(std::ostream& os, const NeighborSearchResult& search);

// Convenience: writes <prefix>.json, <prefix>_cells.csv and
// <prefix>_ranking.csv; returns the JSON path.
std::string write_report_files(const ParborReport& report,
                               const std::string& prefix,
                               const ReportIoOptions& options = {});

}  // namespace parbor::core
