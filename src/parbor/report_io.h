// Report exporters — the release-artifact equivalent of the paper's
// per-chip data release (§6 "Source Code and Data Release").
//
// A ParborReport serialises to JSON (full detail: per-level rankings,
// distances, test budgets, every detected cell optionally) and the failing
// cells to CSV for spreadsheet-style analysis.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "memctrl/host.h"
#include "parbor/parbor.h"
#include "parbor/types.h"

namespace parbor::core {

struct ReportIoOptions {
  // Cell lists can be large; off by default for JSON.
  bool include_cells = false;
  // Module metadata to stamp into the report.
  std::string module_name;
  std::string vendor;
  // Prepend a "build" provenance object (git describe, compiler, flags) so
  // artifacts are traceable to a commit.  Off by default: the golden-file
  // test and cross-binary comparisons need build-independent bytes.
  bool with_build_info = false;
};

// Full characterisation report as a single JSON document.
std::string report_to_json(const ParborReport& report,
                           const ReportIoOptions& options = {});

// Everything report_to_json stores about a report, as a comparable value —
// the round-trip contract is
//   summarize_report(r, o) == report_summary_from_json(report_to_json(r, o))
// and the golden-file test pins the byte-exact JSON on top, so neither the
// serializer nor engine-produced reports can silently drift.
struct LevelSummary {
  int level = 0;
  std::uint32_t region_size = 0;
  std::uint32_t tests = 0;
  std::vector<std::pair<std::int64_t, std::uint64_t>> ranking;
  std::vector<std::int64_t> kept;

  bool operator==(const LevelSummary&) const = default;
};

struct ReportSummary {
  std::string module_name;
  std::string vendor;
  std::uint64_t discovery_tests = 0;
  std::uint64_t victims = 0;
  std::uint64_t cells_observed = 0;
  std::vector<LevelSummary> levels;
  std::uint64_t search_tests = 0;
  std::vector<std::int64_t> distances;
  std::uint64_t fullchip_tests = 0;
  std::uint32_t chunk_bits = 0;
  std::uint64_t rounds = 0;
  std::uint64_t cells_detected = 0;
  std::vector<mc::FlipRecord> cells;  // present only with include_cells
  std::uint64_t total_tests = 0;

  bool operator==(const ReportSummary&) const = default;
};

ReportSummary summarize_report(const ParborReport& report,
                               const ReportIoOptions& options = {});

// Parses a report_to_json document back into its summary.  Malformed or
// structurally unexpected input throws CheckError.
ReportSummary report_summary_from_json(const std::string& json);

// Detected failing cells, one line per cell:
//   chip,bank,row,sys_bit
void write_cells_csv(std::ostream& os, const std::set<mc::FlipRecord>& cells);

// Per-level recursion summary:
//   level,region_size,tests,distance,count,kept
void write_ranking_csv(std::ostream& os, const NeighborSearchResult& search);

// Convenience: writes <prefix>.json, <prefix>_cells.csv and
// <prefix>_ranking.csv; returns the JSON path.
std::string write_report_files(const ParborReport& report,
                               const std::string& prefix,
                               const ReportIoOptions& options = {});

}  // namespace parbor::core
