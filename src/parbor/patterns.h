// Step 5 of PARBOR (§5.2.5): neighbour-location-aware test patterns.
//
// Knowing that every physically coupled pair of cells sits within the
// distance set D in system-address space, the full-chip test partitions the
// row into chunks of length 2 * ceil_pow2(max|D|) and, inside each chunk,
// schedules bits into rounds such that no two bits tested in the same round
// can interfere (their cyclic chunk distance is never in D).  Tested bits
// hold value v while every other bit of the row holds ~v, so each tested
// bit sees the full worst-case interference from all its neighbours.  Every
// round is also run with the inverse pattern to cover true and anti cells.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "common/bitvec.h"

namespace parbor::core {

struct RoundPlan {
  std::uint32_t chunk = 0;  // chunk length in bits
  // Offsets (within a chunk) tested in each round; rounds partition
  // [0, chunk).
  std::vector<std::vector<std::uint32_t>> rounds;

  // Number of write/wait/read tests the full-chip campaign performs:
  // one per round per polarity.
  std::uint64_t total_tests() const { return 2 * rounds.size(); }
};

// Builds the round plan for a distance set.  Strategy:
//  * if min|D| >= 8: contiguous groups of min|D| bits (the paper's scheme —
//    16 rounds for vendor A, 8 for vendor C);
//  * else: stride-4 groups inside 32-bit windows (16 rounds for vendor B,
//    which also keeps second/third physical neighbours unshielded for
//    boustrophedon-style mappings);
//  * fallback: greedy independent-set partition for exotic distance sets.
// The returned plan is always validated: no two same-round offsets may be at
// a cyclic distance contained in D.
RoundPlan make_round_plan(const std::set<std::int64_t>& abs_distances,
                          std::uint32_t row_bits);

// Greedy alternative: packs offsets into the fewest rounds that keep the
// measured distance set independent.  Fewer tests than the paper's scheme,
// but because only the *immediate*-neighbour distances are known to the
// algorithm, denser packing can co-test bits that are second/third
// physical neighbours of each other and shield part of the interference —
// the scheduler ablation quantifies the coverage cost.
RoundPlan make_round_plan_greedy(const std::set<std::int64_t>& abs_distances,
                                 std::uint32_t row_bits);

// The row pattern of one round: bits at tested offsets (replicated across
// all chunks) hold `tested_value`; everything else holds the inverse.
BitVec round_pattern(const RoundPlan& plan, std::size_t round,
                     bool tested_value, std::uint32_t row_bits);

}  // namespace parbor::core
