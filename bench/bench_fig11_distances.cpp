// Reproduces Figure 11: the union of neighbour-region distances PARBOR
// finds at each level of the recursion, for modules from vendors A, B, C.
// The three modules are characterised concurrently by the campaign engine
// (pass --jobs N to bound the worker count).
//
// Paper (final level):  A {±8, ±16, ±48},  B {±1, ±64},  C {±16, ±33, ±49}.
#include <cstdio>
#include <string>

#include "common/flags.h"
#include "common/table.h"
#include "parbor/engine.h"

using namespace parbor;

namespace {

std::string join(const std::vector<std::int64_t>& ds) {
  std::string out;
  for (auto d : ds) {
    if (!out.empty()) out += ", ";
    out += std::to_string(d);
  }
  return out.empty() ? "-" : out;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  std::printf(
      "Figure 11: distances of neighbour regions at each recursion level\n\n");

  core::CampaignEngine engine(flags.get_jobs());
  const auto sweep = engine.run(core::make_population_jobs(
      dram::Scale::kMedium, core::CampaignKind::kSearchOnly,
      {dram::Vendor::kA, dram::Vendor::kB, dram::Vendor::kC}, {1}));

  for (const auto& result : sweep.results) {
    Table table({"Level", "Region size", "Distances found"});
    for (const auto& level : result.report.search.levels) {
      table.add("L" + std::to_string(level.level), level.region_size,
                join(level.found));
    }
    std::printf("Vendor %s (module %s):\n%s",
                dram::vendor_name(result.job.vendor).c_str(),
                result.module_name.c_str(), table.to_string().c_str());

    std::string truth;
    for (auto d : result.truth_distances) {
      if (!truth.empty()) truth += ", ";
      truth += "±" + std::to_string(d);
    }
    std::printf("device ground truth: {%s}\n\n", truth.c_str());
  }
  std::printf(
      "Paper L5 sets: A {±8, ±16, ±48}, B {±1, ±64}, C {±16, ±33, ±49}\n");
  std::printf("(%zu modules on %zu workers, %.2f s wall)\n",
              sweep.results.size(), sweep.workers, sweep.wall_seconds);
  return 0;
}
