// Reproduces Figure 11: the union of neighbour-region distances PARBOR
// finds at each level of the recursion, for modules from vendors A, B, C.
//
// Paper (final level):  A {±8, ±16, ±48},  B {±1, ±64},  C {±16, ±33, ±49}.
#include <cstdio>
#include <string>

#include "common/table.h"
#include "parbor/parbor.h"

using namespace parbor;

namespace {

std::string join(const std::vector<std::int64_t>& ds) {
  std::string out;
  for (auto d : ds) {
    if (!out.empty()) out += ", ";
    out += std::to_string(d);
  }
  return out.empty() ? "-" : out;
}

}  // namespace

int main() {
  std::printf(
      "Figure 11: distances of neighbour regions at each recursion level\n\n");
  for (auto vendor : {dram::Vendor::kA, dram::Vendor::kB, dram::Vendor::kC}) {
    const auto config =
        dram::make_module_config(vendor, 1, dram::Scale::kMedium);
    dram::Module module(config);
    mc::TestHost host(module);
    const auto report = core::run_parbor_search_only(host, {});

    Table table({"Level", "Region size", "Distances found"});
    for (const auto& level : report.search.levels) {
      table.add("L" + std::to_string(level.level), level.region_size,
                join(level.found));
    }
    std::printf("Vendor %s (module %s):\n%s",
                dram::vendor_name(vendor).c_str(), module.name().c_str(),
                table.to_string().c_str());

    std::string truth;
    for (auto d : module.chip(0).scrambler().abs_distance_set()) {
      if (!truth.empty()) truth += ", ";
      truth += "±" + std::to_string(d);
    }
    std::printf("device ground truth: {%s}\n\n", truth.c_str());
  }
  std::printf(
      "Paper L5 sets: A {±8, ±16, ±48}, B {±1, ±64}, C {±16, ±33, ±49}\n");
  return 0;
}
