// Reproduces the paper Appendix's test-time arithmetic:
//  * naive neighbour-location search: O(n) 8.73 min, O(n^2) 49 days,
//    O(n^3) 1115 years, O(n^4) 9.1M years (n = 8K cells per row);
//  * whole-module testing: one write/wait/read iteration over a 2 GB module
//    takes 413.96 ms, so PARBOR's 92-132 tests take tens of seconds.
#include <cstdio>

#include "common/table.h"
#include "memctrl/ddr3.h"
#include "parbor/parbor.h"

using namespace parbor;
using mc::Ddr3Timing;

int main() {
  Ddr3Timing t;
  const std::uint64_t n = 8192;

  std::printf("Appendix: exhaustive neighbour-location test time (n = 8K "
              "cells/row)\n\n");
  const auto naive = mc::naive_test_times(t, n);
  Table naive_table({"Test", "Tests", "Time", "Paper"});
  naive_table.add("per-bit", std::uint64_t{1},
                  format_seconds(naive.per_bit_test_s), "~64 ms");
  naive_table.add("O(n)   (1 neighbour, linear)", n,
                  format_seconds(naive.linear_s), "8.73 min");
  naive_table.add("O(n^2) (2 neighbours)", n * n,
                  format_seconds(naive.quadratic_s), "49 days");
  naive_table.add("O(n^3) (3 neighbours)", n * n * n,
                  format_seconds(naive.cubic_s), "1115 years");
  naive_table.add("O(n^4) (4 neighbours)", n * n * n * n,
                  format_seconds(naive.quartic_s), "9.1M years");
  std::printf("%s\n", naive_table.to_string().c_str());

  std::printf("Whole-module test time (2 GB module, 262144 rows, "
              "DDR3-1600):\n\n");
  const std::uint64_t rows = 262144;
  Table module_table({"Quantity", "Value", "Paper"});
  module_table.add("read/write one 8 KB row",
                   format_seconds(t.full_row_access(8192).seconds()),
                   "667.5 ns");
  module_table.add("sweep whole module",
                   format_seconds(t.module_sweep(rows).seconds()),
                   "174.98 ms");
  module_table.add("one test (write+wait+read)",
                   format_seconds(t.module_test(rows).seconds()),
                   "413.96 ms");
  module_table.add("92 tests (min PARBOR budget)",
                   format_seconds(t.module_test(rows).seconds() * 92.0),
                   "~38 s");
  module_table.add("132 tests (max PARBOR budget)",
                   format_seconds(t.module_test(rows).seconds() * 132.0),
                   "~55 s");
  std::printf("%s\n", module_table.to_string().c_str());

  // End-to-end budgets measured on the simulated modules (per-vendor).
  std::printf("Measured end-to-end PARBOR budgets (simulated modules):\n\n");
  Table measured({"Vendor", "Discovery", "Recursion", "Full-chip", "Total",
                  "Simulated time (at 64 ms waits)"});
  for (auto vendor : {dram::Vendor::kA, dram::Vendor::kB, dram::Vendor::kC}) {
    dram::Module module(
        dram::make_module_config(vendor, 1, dram::Scale::kSmall));
    mc::TestHost host(module);
    const auto report = core::run_parbor(host, {});
    // Scale the per-test time to a full 2 GB module at the standard 64 ms
    // wait (the experiments themselves use an elevated 4 s interval).
    const double wall =
        t.module_test(rows).seconds() *
        static_cast<double>(report.total_tests());
    measured.add(dram::vendor_name(vendor), report.discovery.tests,
                 report.search.tests, report.fullchip.tests,
                 report.total_tests(), format_seconds(wall));
  }
  std::printf("%s", measured.to_string().c_str());
  std::printf("\nPaper: total 92-132 tests -> 38-55 s per 2 GB module.\n");
  return 0;
}
