// Ablation: the two DC-REF memory-system engines.
//
// The Fig. 16 bench uses the blocking-window model with a calibrated
// refresh-cost amplification (matching RAIDR's measured refresh-overhead
// curves).  The command-accurate engine schedules every PRE/ACT/RD/WR/REF
// through the JEDEC constraint checker, producing the row-buffer
// destruction and command-bus serialisation costs structurally.  This
// bench runs both on the same workloads so the policy ordering and the
// engines' sensitivity to refresh can be compared.
#include <cstdio>

#include "common/stats.h"
#include "common/table.h"
#include "dcref/sim.h"

using namespace parbor;
using namespace parbor::dcref;

int main(int argc, char** argv) {
  const int workloads = argc > 1 ? std::atoi(argv[1]) : 8;
  Table table({"Engine", "tRFC ns", "RAIDR +%", "DC-REF +%",
               "DC-REF vs RAIDR +%"});
  for (auto engine : {MemEngine::kSimple, MemEngine::kCommandLevel}) {
    const char* name = engine == MemEngine::kSimple
                           ? "blocking-window (calibrated)"
                           : "command-accurate";
    for (double trfc : {590.0, 1000.0}) {
      SimConfig cfg;
      cfg.engine = engine;
      cfg.mem.tRFC_ns = trfc;
      cfg.requests_per_core = 20000;
      std::vector<double> raidr_gain, dcref_gain, delta;
      for (int w = 0; w < workloads; ++w) {
        const auto apps = make_workload(w);
        cfg.seed = 0x510c0 + static_cast<std::uint64_t>(w) * 104729;
        const auto alone = alone_ipcs(apps, cfg);
        UniformRefresh uniform;
        RaidrRefresh raidr(0.164);
        DcRefRefresh dcref(cfg.mem.total_rows, 0.164);
        const double ws_base =
            weighted_speedup(run_simulation(apps, uniform, cfg), alone);
        const double ws_raidr =
            weighted_speedup(run_simulation(apps, raidr, cfg), alone);
        const double ws_dcref =
            weighted_speedup(run_simulation(apps, dcref, cfg), alone);
        raidr_gain.push_back(100.0 * (ws_raidr / ws_base - 1.0));
        dcref_gain.push_back(100.0 * (ws_dcref / ws_base - 1.0));
        delta.push_back(100.0 * (ws_dcref / ws_raidr - 1.0));
      }
      table.add(name, trfc, mean_of(raidr_gain), mean_of(dcref_gain),
                mean_of(delta));
    }
  }
  std::printf("DC-REF engine ablation (%d workloads per cell)\n\n%s",
              workloads, table.to_string().c_str());
  std::printf(
      "\nBoth engines agree on the ordering (DC-REF > RAIDR > baseline) and\n"
      "on sensitivity growing with density.  The command-accurate engine is\n"
      "a LOWER bound on refresh interference: with simple cores it cannot\n"
      "reproduce the scheduler-queue contention an OoO front end generates,\n"
      "which is why the Fig. 16 bench uses the window model calibrated to\n"
      "RAIDR's published refresh-overhead curves.\n");
  return 0;
}
