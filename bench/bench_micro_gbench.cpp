// Google-benchmark micro-benchmarks: throughput of the hot paths every
// campaign exercises (scrambler permutation, row fault evaluation, pattern
// construction, round scheduling) and the end-to-end neighbour search.
#include <benchmark/benchmark.h>

#include "common/telemetry/metrics.h"
#include "parbor/parbor.h"

using namespace parbor;

namespace {

void BM_ScramblerPermutation(benchmark::State& state) {
  const auto vendor = static_cast<dram::Vendor>(state.range(0));
  auto scr = dram::make_scrambler(vendor, 8192);
  std::size_t sink = 0;
  for (auto _ : state) {
    for (std::size_t s = 0; s < 8192; ++s) sink += scr->to_physical(s);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_ScramblerPermutation)
    ->Arg(static_cast<int>(dram::Vendor::kA))
    ->Arg(static_cast<int>(dram::Vendor::kB))
    ->Arg(static_cast<int>(dram::Vendor::kC));

void BM_PermuteRowToPhysical(benchmark::State& state) {
  dram::ChipConfig cfg;
  cfg.rows = 4;
  dram::Chip chip(cfg, Rng(1));
  BitVec sys(8192);
  for (std::size_t i = 0; i < 8192; i += 3) sys.set(i, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chip.permute_to_physical(sys));
  }
  state.SetBytesProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_PermuteRowToPhysical);

void BM_RowFaultEvaluation(benchmark::State& state) {
  auto cfg = dram::make_module_config(dram::Vendor::kC, 6, dram::Scale::kTiny);
  dram::Module module(cfg);
  mc::TestHost host(module);
  BitVec pattern(8192);
  for (std::size_t i = 0; i < 8192; ++i) pattern.set(i, (i >> 3) & 1);
  std::uint32_t row = 0;
  for (auto _ : state) {
    host.write_row({0, 0, row}, pattern);
    host.wait(SimTime::sec(4));
    benchmark::DoNotOptimize(host.read_row_flips({0, 0, row}));
    row = (row + 1) % cfg.chip.rows;
  }
}
BENCHMARK(BM_RowFaultEvaluation);

// The read kernel under a coupling-dominated load: every row carries a dense
// coupling population (no other fault classes), every pass holds long enough
// to arm all of it, and the timed region is pure read_row_flips.  CI records
// this case into BENCH_read_kernel.json and gates on the checked-in baseline.
// Runs with the metrics registry enabled and disabled: the /telemetry_off
// variant is the perf-gated configuration (instrumentation creep on the
// disabled path is a regression), /telemetry_on measures the real overhead
// of live command accounting (recorded in the README).
void BM_ReadKernelCouplingSweep(benchmark::State& state, bool telemetry) {
  auto& registry = telemetry::MetricsRegistry::global();
  registry.set_enabled(telemetry);
  auto cfg = dram::make_module_config(dram::Vendor::kA, 1, dram::Scale::kTiny);
  cfg.chip.faults.coupling_cell_rate = 2e-2;
  cfg.chip.faults.weak_cell_rate = 0.0;
  cfg.chip.faults.vrt_cell_rate = 0.0;
  cfg.chip.faults.marginal_cell_rate = 0.0;
  cfg.chip.faults.soft_error_rate = 0.0;
  dram::Module module(cfg);
  mc::TestHost host(module);
  BitVec pattern(cfg.chip.row_bits);
  for (std::size_t i = 0; i < cfg.chip.row_bits; ++i) {
    pattern.set(i, (i >> 3) & 1);
  }
  const auto rows = host.all_rows();
  for (const auto& addr : rows) host.write_row(addr, pattern);
  // One warm-up pass so lazy fault generation (and plan compilation) is
  // excluded from the timed region.
  host.wait(host.test_wait());
  for (const auto& addr : rows) host.read_row_flips(addr);
  std::size_t flips = 0;
  for (auto _ : state) {
    host.wait(host.test_wait());
    for (const auto& addr : rows) {
      flips += host.read_row_flips(addr).size();
    }
    benchmark::DoNotOptimize(flips);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rows.size()));
  registry.set_enabled(false);
}
BENCHMARK_CAPTURE(BM_ReadKernelCouplingSweep, telemetry_off, false);
BENCHMARK_CAPTURE(BM_ReadKernelCouplingSweep, telemetry_on, true);

// The same coupling-dominated sweep through the batched block-kernel entry
// (TestHost::read_rows_flips): one call covers the whole bank, so the timed
// region exercises the structure-of-arrays plan, the branchless charged-
// victim compaction and the interleaved accumulation.  CI records this case
// into BENCH_read_kernel_batched.json, gates it against its own baseline,
// and additionally gates it against the *scalar* baseline at --max-ratio 0.5
// — the batched kernel must stay at least 2x faster than the scalar one it
// shadows, or the whole point of the block path is gone.
void BM_ReadKernelCouplingSweepBatched(benchmark::State& state,
                                       bool telemetry) {
  auto& registry = telemetry::MetricsRegistry::global();
  registry.set_enabled(telemetry);
  auto cfg = dram::make_module_config(dram::Vendor::kA, 1, dram::Scale::kTiny);
  cfg.chip.faults.coupling_cell_rate = 2e-2;
  cfg.chip.faults.weak_cell_rate = 0.0;
  cfg.chip.faults.vrt_cell_rate = 0.0;
  cfg.chip.faults.marginal_cell_rate = 0.0;
  cfg.chip.faults.soft_error_rate = 0.0;
  dram::Module module(cfg);
  mc::TestHost host(module);
  host.set_read_path(mc::TestHost::ReadPath::kBatched);
  BitVec pattern(cfg.chip.row_bits);
  for (std::size_t i = 0; i < cfg.chip.row_bits; ++i) {
    pattern.set(i, (i >> 3) & 1);
  }
  const auto rows = host.all_rows();
  for (const auto& addr : rows) host.write_row(addr, pattern);
  std::vector<mc::FlipRecord> out;
  host.wait(host.test_wait());
  host.read_rows_flips(rows, out);  // warm-up: lazy generation + compilation
  std::size_t flips = 0;
  for (auto _ : state) {
    host.wait(host.test_wait());
    out.clear();  // read_rows_flips appends; capacity stays warm
    host.read_rows_flips(rows, out);
    flips += out.size();
    benchmark::DoNotOptimize(flips);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rows.size()));
  registry.set_enabled(false);
}
BENCHMARK_CAPTURE(BM_ReadKernelCouplingSweepBatched, telemetry_off, false);
BENCHMARK_CAPTURE(BM_ReadKernelCouplingSweepBatched, telemetry_on, true);

void BM_RoundPlanConstruction(benchmark::State& state) {
  const std::set<std::int64_t> distances{1, 64};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::make_round_plan(distances, 8192));
  }
}
BENCHMARK(BM_RoundPlanConstruction);

void BM_RoundPatternConstruction(benchmark::State& state) {
  const auto plan = core::make_round_plan({8, 16, 48}, 8192);
  std::size_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::round_pattern(plan, round, true, 8192));
    round = (round + 1) % plan.rounds.size();
  }
}
BENCHMARK(BM_RoundPatternConstruction);

void BM_EndToEndNeighborSearch(benchmark::State& state) {
  for (auto _ : state) {
    dram::Module module(
        dram::make_module_config(dram::Vendor::kA, 1, dram::Scale::kTiny));
    mc::TestHost host(module);
    benchmark::DoNotOptimize(core::run_parbor_search_only(host, {}));
  }
}
BENCHMARK(BM_EndToEndNeighborSearch)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
