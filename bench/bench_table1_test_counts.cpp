// Reproduces Table 1: number of recursive tests PARBOR performs at each
// level for modules from the three vendors, plus the §7.1 reduction factors
// vs the O(n) and O(n^2) naive searches.  The per-vendor campaigns run
// concurrently on the engine.
//
// Paper:  A 2/8/8/24/48 = 90,  B 2/8/8/24/24 = 66,  C 2/8/8/24/48 = 90;
//         90X and 745,654X reduction vs O(n) and O(n^2).
#include <cstdio>

#include "common/flags.h"
#include "common/table.h"
#include "parbor/engine.h"

using namespace parbor;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  std::printf("Table 1: number of tests performed by PARBOR per level\n");
  std::printf("(one module per vendor, geometry %s)\n\n", "8 chips x 256 rows");

  core::CampaignEngine engine(flags.get_jobs());
  const auto sweep = engine.run(core::make_population_jobs(
      dram::Scale::kMedium, core::CampaignKind::kSearchOnly,
      {dram::Vendor::kA, dram::Vendor::kB, dram::Vendor::kC}, {1}));

  Table table({"Manufacturer", "L1", "L2", "L3", "L4", "L5", "Total",
               "vs O(n)", "vs O(n^2)"});
  for (const auto& result : sweep.results) {
    std::vector<std::string> cells;
    cells.push_back(dram::vendor_name(result.job.vendor));
    std::uint64_t total = 0;
    for (const auto& level : result.report.search.levels) {
      cells.push_back(std::to_string(level.tests));
      total += level.tests;
    }
    while (cells.size() < 6) cells.push_back("-");
    cells.push_back(std::to_string(total));
    const double n = static_cast<double>(result.row_bits);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0fX", n / static_cast<double>(total));
    cells.push_back(buf);
    std::snprintf(buf, sizeof buf, "%.0fX",
                  n * n / static_cast<double>(total));
    cells.push_back(buf);
    table.add_row(cells);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nPaper: A 2/8/8/24/48=90, B 2/8/8/24/24=66, C 2/8/8/24/48=90;\n"
      "       90X vs O(n) and 745,654X vs O(n^2) for the 90-test vendors.\n");
  std::printf("(%zu modules on %zu workers, %.2f s wall)\n",
              sweep.results.size(), sweep.workers, sweep.wall_seconds);
  return 0;
}
