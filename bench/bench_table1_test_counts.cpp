// Reproduces Table 1: number of recursive tests PARBOR performs at each
// level for modules from the three vendors, plus the §7.1 reduction factors
// vs the O(n) and O(n^2) naive searches.
//
// Paper:  A 2/8/8/24/48 = 90,  B 2/8/8/24/24 = 66,  C 2/8/8/24/48 = 90;
//         90X and 745,654X reduction vs O(n) and O(n^2).
#include <cstdio>

#include "common/table.h"
#include "parbor/parbor.h"

using namespace parbor;

int main() {
  std::printf("Table 1: number of tests performed by PARBOR per level\n");
  std::printf("(one module per vendor, geometry %s)\n\n", "8 chips x 256 rows");

  Table table({"Manufacturer", "L1", "L2", "L3", "L4", "L5", "Total",
               "vs O(n)", "vs O(n^2)"});
  for (auto vendor : {dram::Vendor::kA, dram::Vendor::kB, dram::Vendor::kC}) {
    const auto config =
        dram::make_module_config(vendor, 1, dram::Scale::kMedium);
    dram::Module module(config);
    mc::TestHost host(module);
    const auto report = core::run_parbor_search_only(host, {});

    std::vector<std::string> cells;
    cells.push_back(dram::vendor_name(vendor));
    std::uint64_t total = 0;
    for (const auto& level : report.search.levels) {
      cells.push_back(std::to_string(level.tests));
      total += level.tests;
    }
    while (cells.size() < 6) cells.push_back("-");
    cells.push_back(std::to_string(total));
    const double n = static_cast<double>(host.row_bits());
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0fX", n / static_cast<double>(total));
    cells.push_back(buf);
    std::snprintf(buf, sizeof buf, "%.0fX",
                  n * n / static_cast<double>(total));
    cells.push_back(buf);
    table.add_row(cells);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nPaper: A 2/8/8/24/48=90, B 2/8/8/24/24=66, C 2/8/8/24/48=90;\n"
      "       90X vs O(n) and 745,654X vs O(n^2) for the 90-test vendors.\n");
  return 0;
}
