// Reproduces Figure 13: coverage split of all uncovered failures into
// PARBOR-only / random-only / both, for modules A1, B1, C1.  The engine
// runs the three full-pipeline + random-baseline campaigns concurrently.
//
// Paper: 20-30% of failures are found ONLY by PARBOR; less than 1% (A1, C1)
// to ~5% (B1) are found only by the random-pattern test (randomly-occurring
// failures such as VRT, plus remapped columns whose neighbours PARBOR's
// regular-mapping patterns cannot target).
#include <cstdio>

#include "common/flags.h"
#include "common/table.h"
#include "parbor/engine.h"

using namespace parbor;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  std::printf("Figure 13: coverage of failures for A1, B1, and C1\n\n");

  core::CampaignEngine engine(flags.get_jobs());
  const auto sweep = engine.run(core::make_population_jobs(
      dram::Scale::kMedium, core::CampaignKind::kFullWithRandom,
      {dram::Vendor::kA, dram::Vendor::kB, dram::Vendor::kC}, {1}));

  Table table({"Module", "Total", "Only PARBOR %", "Only random %",
               "Both %"});
  for (const auto& result : sweep.results) {
    const auto parbor_cells = result.report.all_detected();
    std::size_t both = 0;
    for (const auto& cell : parbor_cells) {
      if (result.random.cells.contains(cell)) ++both;
    }
    const std::size_t only_parbor = parbor_cells.size() - both;
    const std::size_t only_random = result.random.cells.size() - both;
    const double total =
        static_cast<double>(only_parbor + only_random + both);
    table.add(result.module_name, static_cast<std::uint64_t>(total),
              100.0 * static_cast<double>(only_parbor) / total,
              100.0 * static_cast<double>(only_random) / total,
              100.0 * static_cast<double>(both) / total);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nPaper: only-PARBOR 20-30%%; only-random <1%% for A1 and C1, ~5%% "
      "for B1.\n");
  std::printf("(%zu modules on %zu workers, %.2f s wall)\n",
              sweep.results.size(), sweep.workers, sweep.wall_seconds);
  return 0;
}
