// Reproduces Figure 13: coverage split of all uncovered failures into
// PARBOR-only / random-only / both, for modules A1, B1, C1.
//
// Paper: 20-30% of failures are found ONLY by PARBOR; less than 1% (A1, C1)
// to ~5% (B1) are found only by the random-pattern test (randomly-occurring
// failures such as VRT, plus remapped columns whose neighbours PARBOR's
// regular-mapping patterns cannot target).
#include <cstdio>

#include "common/table.h"
#include "parbor/parbor.h"

using namespace parbor;

int main() {
  std::printf("Figure 13: coverage of failures for A1, B1, and C1\n\n");
  Table table({"Module", "Total", "Only PARBOR %", "Only random %",
               "Both %"});
  for (auto vendor : {dram::Vendor::kA, dram::Vendor::kB, dram::Vendor::kC}) {
    const auto config =
        dram::make_module_config(vendor, 1, dram::Scale::kMedium);
    dram::Module module(config);
    mc::TestHost host(module);
    const auto report = core::run_parbor(host, {});
    const auto parbor_cells = report.all_detected();
    const auto random = core::run_random_campaign(
        host, report.total_tests(), config.seed ^ 0xabcdef);

    std::size_t both = 0;
    for (const auto& cell : parbor_cells) {
      if (random.cells.contains(cell)) ++both;
    }
    const std::size_t only_parbor = parbor_cells.size() - both;
    const std::size_t only_random = random.cells.size() - both;
    const double total =
        static_cast<double>(only_parbor + only_random + both);
    table.add(module.name(), static_cast<std::uint64_t>(total),
              100.0 * static_cast<double>(only_parbor) / total,
              100.0 * static_cast<double>(only_random) / total,
              100.0 * static_cast<double>(both) / total);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nPaper: only-PARBOR 20-30%%; only-random <1%% for A1 and C1, ~5%% "
      "for B1.\n");
  return 0;
}
