// Reproduces Figure 16 and the §8 refresh accounting: weighted-speedup of
// DC-REF and RAIDR over a uniform-64ms-refresh baseline for 32 random
// 8-core SPEC-like workloads, at 16 Gbit (tRFC 590 ns) and 32 Gbit (1 us).
//
// Paper: DC-REF improves performance by 18.0% on average (32 Gbit) over the
// baseline and by 3.0% over RAIDR; it reduces refresh operations by 73% vs
// the baseline and 27.6% vs RAIDR; RAIDR keeps 16.4% of rows on the fast
// 64 ms schedule while DC-REF's content check leaves only ~2.7% there.
#include <cstdio>

#include "common/stats.h"
#include "common/table.h"
#include "dcref/sim.h"

using namespace parbor;
using namespace parbor::dcref;

namespace {

struct PolicyOutcome {
  double ws_gain_pct = 0.0;
  double high_fraction = 0.0;
  double refresh_ops = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const int workloads = argc > 1 ? std::atoi(argv[1]) : 32;
  std::printf("Table 2 system: 8 cores @3.2 GHz, DDR3-1600, 2 channels x\n"
              "2 ranks x 8 banks; refresh 64 ms (fast) / 256 ms (slow);\n"
              "RAIDR fast-row fraction 16.4%% (measured on real chips).\n\n");

  for (double trfc_ns : {590.0, 1000.0}) {
    const char* density = trfc_ns < 600.0 ? "16 Gbit" : "32 Gbit";
    std::printf("=== %s chips (tRFC = %.0f ns) ===\n", density, trfc_ns);

    SimConfig cfg;
    cfg.mem.tRFC_ns = trfc_ns;

    std::vector<double> raidr_gains, dcref_gains, dcref_vs_raidr;
    RunningStats dcref_high, dcref_refresh_red, raidr_refresh_red;
    double uniform_ops = 0.0, raidr_ops = 0.0, dcref_ops = 0.0;

    Table table({"Workload", "WS uniform", "WS RAIDR", "WS DC-REF",
                 "RAIDR +%", "DC-REF +%", "DC-REF hi-rows %"});
    for (int w = 0; w < workloads; ++w) {
      const auto apps = make_workload(w);
      cfg.seed = 0x510c0 + static_cast<std::uint64_t>(w) * 104729;
      const auto alone = alone_ipcs(apps, cfg);

      UniformRefresh uniform;
      const auto base = run_simulation(apps, uniform, cfg);
      const double ws_base = weighted_speedup(base, alone);

      RaidrRefresh raidr(0.164);
      const auto r = run_simulation(apps, raidr, cfg);
      const double ws_raidr = weighted_speedup(r, alone);

      DcRefRefresh dcref(cfg.mem.total_rows, 0.164);
      const auto d = run_simulation(apps, dcref, cfg);
      const double ws_dcref = weighted_speedup(d, alone);

      const double raidr_gain = 100.0 * (ws_raidr / ws_base - 1.0);
      const double dcref_gain = 100.0 * (ws_dcref / ws_base - 1.0);
      raidr_gains.push_back(raidr_gain);
      dcref_gains.push_back(dcref_gain);
      dcref_vs_raidr.push_back(100.0 * (ws_dcref / ws_raidr - 1.0));
      dcref_high.add(100.0 * d.mean_high_rate_fraction);
      uniform_ops += base.row_refreshes_per_second;
      raidr_ops += r.row_refreshes_per_second;
      // For DC-REF use the time-averaged load factor seen during the run.
      dcref_ops += base.row_refreshes_per_second * d.mean_load_factor;

      if (w < 8) {  // keep the table readable; averages cover all workloads
        table.add("WL" + std::to_string(w), ws_base, ws_raidr, ws_dcref,
                  raidr_gain, dcref_gain, 100.0 * d.mean_high_rate_fraction);
      }
    }
    std::printf("%s", table.to_string().c_str());
    std::printf(
        "Average over %d workloads:\n"
        "  RAIDR  speedup over baseline: %+.1f%%\n"
        "  DC-REF speedup over baseline: %+.1f%%   (paper 32 Gbit: +18.0%%)\n"
        "  DC-REF speedup over RAIDR:    %+.1f%%   (paper 32 Gbit: +3.0%%)\n"
        "  DC-REF fast-refresh rows:      %.1f%%   (paper: 2.7%%; RAIDR "
        "16.4%%)\n"
        "  refresh ops: DC-REF vs baseline -%.1f%%  (paper: -73%%), "
        "vs RAIDR -%.1f%% (paper: -27.6%%)\n\n",
        workloads, mean_of(raidr_gains), mean_of(dcref_gains),
        mean_of(dcref_vs_raidr), dcref_high.mean(),
        100.0 * (1.0 - dcref_ops / uniform_ops),
        100.0 * (1.0 - dcref_ops / raidr_ops));
  }
  return 0;
}
