// Reproduces Figure 12: extra failures uncovered by PARBOR's neighbour-aware
// testing compared to random-pattern testing with the SAME test budget, for
// all 18 modules (6 per vendor).
//
// Paper: PARBOR finds 1K-45K additional failures per module (2-55% increase,
// 21.9% on average); modules from C are the most vulnerable.
//
// Note on scale: the paper tests 2 GB modules (8 chips x 8 banks x 32K rows);
// the simulated geometry is 8 chips x 1 bank x 256 rows with the same
// 8K-bit rows and calibrated fault densities, so absolute counts are
// proportionally smaller while the relative increases match.
#include <cstdio>

#include "common/stats.h"
#include "common/table.h"
#include "parbor/parbor.h"

using namespace parbor;

int main() {
  std::printf(
      "Figure 12: extra failures uncovered by PARBOR vs an equal-budget\n"
      "random-pattern test, per module\n\n");
  Table table({"Module", "Tests", "PARBOR", "Random", "PARBOR-only",
               "Increase %"});
  std::vector<double> increases;
  for (const auto& config : dram::make_population(dram::Scale::kMedium)) {
    dram::Module module(config);
    mc::TestHost host(module);
    const auto report = core::run_parbor(host, {});
    const auto parbor_cells = report.all_detected();

    const auto random = core::run_random_campaign(
        host, report.total_tests(), config.seed ^ 0xabcdef);

    std::size_t parbor_only = 0;
    for (const auto& cell : parbor_cells) {
      if (!random.cells.contains(cell)) ++parbor_only;
    }
    const double increase =
        random.cells.empty()
            ? 0.0
            : 100.0 * static_cast<double>(parbor_only) /
                  static_cast<double>(random.cells.size());
    increases.push_back(increase);
    table.add(module.name(), report.total_tests(), parbor_cells.size(),
              random.cells.size(), parbor_only, increase);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nAverage increase: %.1f%%   (paper: 21.9%% on average, "
              "2-55%% per module)\n",
              mean_of(increases));
  return 0;
}
