// Reproduces Figure 15: effect of the initial victim-set sample size on the
// level-4 distance ranking, for modules B1 and C1.
//
// Paper: with a small sample (1K victims out of a 2 GB module) noise
// distances can look relatively frequent (e.g. distance 5 in C1); larger
// samples (5K/10K/15K) separate true neighbour regions cleanly.  The
// simulated geometry has 2048 rows (one victim per row), so the sweep uses
// proportionally smaller sample caps.
#include <cstdio>

#include "common/table.h"
#include "parbor/parbor.h"

using namespace parbor;

int main() {
  std::printf("Figure 15: L4 ranking vs victim sample size (B1, C1)\n\n");
  const std::size_t kSamples[] = {32, 128, 512, 2048};
  for (auto vendor : {dram::Vendor::kB, dram::Vendor::kC}) {
    const auto config =
        dram::make_module_config(vendor, 1, dram::Scale::kMedium);
    std::printf("=== Module %s ===\n", config.name.c_str());
    for (std::size_t sample : kSamples) {
      dram::Module module(config);
      mc::TestHost host(module);
      core::ParborConfig pcfg;
      pcfg.max_victims = sample;
      const auto report = core::run_parbor_search_only(host, pcfg);

      const core::RecursionLevel* l4 = nullptr;
      for (const auto& level : report.search.levels) {
        if (level.level == 4) l4 = &level;
      }
      std::printf("sample %4zu victims (%zu used): ", sample,
                  report.discovery.victims.size());
      if (l4 == nullptr) {
        std::printf("recursion ended before L4\n");
        continue;
      }
      const double max = static_cast<double>(l4->ranking.max_count());
      for (const auto& [d, count] : l4->ranking.sorted_by_key()) {
        std::printf("%lld:%.2f ", static_cast<long long>(d),
                    max > 0 ? static_cast<double>(count) / max : 0.0);
      }
      std::printf("| kept:");
      for (auto d : l4->found) {
        std::printf(" %lld", static_cast<long long>(d));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf(
      "Paper: small samples leave noise distances relatively frequent;\n"
      "larger samples make the ranking robust to random failures.\n");
  return 0;
}
