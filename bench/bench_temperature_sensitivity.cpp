// Reproduces the §6 temperature claim: the neighbour locations PARBOR
// determines do not depend on operating temperature (tested at 40/45/50 C;
// retention roughly halves per +10 C, so failure *counts* move, but the
// address-space geometry does not).
#include <cstdio>
#include <string>

#include "common/table.h"
#include "parbor/parbor.h"

using namespace parbor;

int main() {
  std::printf("Temperature sensitivity of neighbour locations (paper §6)\n\n");
  Table table({"Vendor", "Temp (C)", "Victims", "Distances found",
               "Matches 45C"});
  for (auto vendor : {dram::Vendor::kA, dram::Vendor::kB, dram::Vendor::kC}) {
    std::set<std::int64_t> reference;
    for (double temp : {45.0, 40.0, 50.0}) {
      dram::Module module(
          dram::make_module_config(vendor, 1, dram::Scale::kSmall));
      module.set_temperature(temp);
      mc::TestHost host(module);
      const auto report = core::run_parbor_search_only(host, {});
      std::string ds;
      for (auto d : report.search.abs_distances()) {
        if (!ds.empty()) ds += ", ";
        ds += "±" + std::to_string(d);
      }
      if (temp == 45.0) reference = report.search.abs_distances();
      table.add(dram::vendor_name(vendor), temp,
                report.discovery.victims.size(), ds,
                report.search.abs_distances() == reference ? "yes" : "NO");
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nPaper: neighbour locations determined by PARBOR are not dependent\n"
      "on temperature (40/45/50 C sensitivity runs).\n");
  return 0;
}
