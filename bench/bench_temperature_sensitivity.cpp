// Reproduces the §6 temperature claim: the neighbour locations PARBOR
// determines do not depend on operating temperature (tested at 40/45/50 C;
// retention roughly halves per +10 C, so failure *counts* move, but the
// address-space geometry does not).  All nine (vendor, temperature) runs
// execute concurrently — derive_job_seed excludes temperature, so each
// vendor's three runs replay the identical test stream.
#include <cstdio>
#include <map>
#include <string>

#include "common/flags.h"
#include "common/table.h"
#include "parbor/engine.h"

using namespace parbor;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  std::printf("Temperature sensitivity of neighbour locations (paper §6)\n\n");

  std::vector<core::SweepJob> jobs;
  for (auto vendor : {dram::Vendor::kA, dram::Vendor::kB, dram::Vendor::kC}) {
    for (double temp : {45.0, 40.0, 50.0}) {
      core::SweepJob job;
      job.vendor = vendor;
      job.index = 1;
      job.scale = dram::Scale::kSmall;
      job.kind = core::CampaignKind::kSearchOnly;
      job.temperature_c = temp;
      jobs.push_back(job);
    }
  }

  core::CampaignEngine engine(flags.get_jobs());
  const auto sweep = engine.run(jobs);

  Table table({"Vendor", "Temp (C)", "Victims", "Distances found",
               "Matches 45C"});
  std::map<dram::Vendor, std::set<std::int64_t>> reference;
  for (const auto& result : sweep.results) {
    if (result.job.temperature_c == 45.0) {
      reference[result.job.vendor] = result.report.search.abs_distances();
    }
  }
  for (const auto& result : sweep.results) {
    std::string ds;
    for (auto d : result.report.search.abs_distances()) {
      if (!ds.empty()) ds += ", ";
      ds += "±" + std::to_string(d);
    }
    table.add(dram::vendor_name(result.job.vendor), result.job.temperature_c,
              result.report.discovery.victims.size(), ds,
              result.report.search.abs_distances() ==
                      reference[result.job.vendor]
                  ? "yes"
                  : "NO");
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nPaper: neighbour locations determined by PARBOR are not dependent\n"
      "on temperature (40/45/50 C sensitivity runs).\n");
  std::printf("(%zu runs on %zu workers, %.2f s wall)\n",
              sweep.results.size(), sweep.workers, sweep.wall_seconds);
  return 0;
}
