// Ablation: full-chip round scheduling — the paper's conservative grouping
// vs a greedy minimal-round packing.
//
// The greedy scheduler needs fewer tests, but the algorithm only KNOWS the
// immediate-neighbour distance set; denser packing can co-test bits that
// are second/third/fourth physical neighbours of each other, shielding part
// of the worst-case interference and silently losing coverage of tight
// cells.  The paper's grouping leaves wide guard bands that happen to keep
// the outer neighbours unshielded on all three vendor layouts.
#include <cstdio>

#include "common/table.h"
#include "parbor/parbor.h"

using namespace parbor;

int main() {
  Table table({"Vendor", "Scheduler", "Rounds", "Tests", "Coupling found",
               "Coverage %"});
  for (auto vendor : {dram::Vendor::kA, dram::Vendor::kB, dram::Vendor::kC}) {
    auto cfg = dram::make_module_config(vendor, 1, dram::Scale::kSmall);
    cfg.chip.remapped_cols = 0;
    cfg.chip.faults.vrt_cell_rate = 0.0;
    cfg.chip.faults.marginal_cell_rate = 0.0;
    cfg.chip.faults.soft_error_rate = 0.0;
    cfg.chip.faults.weak_cell_rate = 0.0;
    cfg.chip.faults.coupling_cell_rate = 1e-3;

    for (bool greedy : {false, true}) {
      dram::Module module(cfg);
      mc::TestHost host(module);
      const auto distances = module.chip(0).scrambler().abs_distance_set();
      const auto plan =
          greedy ? core::make_round_plan_greedy(distances, host.row_bits())
                 : core::make_round_plan(distances, host.row_bits());
      const auto result = core::run_fullchip_test(host, plan);

      // Ground truth coverage over all coupling cells.
      std::size_t total = 0, found = 0;
      for (std::uint32_t c = 0; c < module.chip_count(); ++c) {
        auto& bank = module.chip(c).bank(0);
        const auto& scr = module.chip(c).scrambler();
        for (std::uint32_t r = 0; r < cfg.chip.rows; ++r) {
          for (const auto& cell : bank.row_faults(r).coupling) {
            ++total;
            if (result.cells.contains(
                    {{c, 0, r},
                     static_cast<std::uint32_t>(
                         scr.to_system(cell.phys_col))})) {
              ++found;
            }
          }
        }
      }
      table.add(dram::vendor_name(vendor),
                greedy ? "greedy (min rounds)" : "paper grouping",
                plan.rounds.size(), plan.total_tests(), found,
                100.0 * static_cast<double>(found) /
                    static_cast<double>(total));
    }
  }
  std::printf("Full-chip scheduler ablation\n\n%s", table.to_string().c_str());
  std::printf(
      "\nGreedy packing saves tests but can silently shield outer-neighbour\n"
      "interference; the paper's wider groups keep full coverage.\n");
  return 0;
}
