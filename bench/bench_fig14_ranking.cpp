// Reproduces Figure 14: ranking of neighbour regions at recursion level 4
// for modules A1, B1, C1 — the number of times each region distance was
// discovered, normalised to the most frequent distance.  The three modules
// are characterised concurrently by the campaign engine.
//
// Paper: a few distances dominate (the true neighbour regions, e.g. ±1, ±2,
// ±6 for A1); infrequent distances (e.g. ±3, ±9 in B1) are noise from
// random failures and are filtered out by the ranking step (§5.2.4).
#include <cstdio>

#include "common/flags.h"
#include "common/table.h"
#include "parbor/engine.h"

using namespace parbor;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  std::printf(
      "Figure 14: ranking of regions at recursion level 4 (region size 8)\n\n");

  core::CampaignEngine engine(flags.get_jobs());
  const auto sweep = engine.run(core::make_population_jobs(
      dram::Scale::kMedium, core::CampaignKind::kSearchOnly,
      {dram::Vendor::kA, dram::Vendor::kB, dram::Vendor::kC}, {1}));

  for (const auto& result : sweep.results) {
    const core::RecursionLevel* l4 = nullptr;
    for (const auto& level : result.report.search.levels) {
      if (level.level == 4) l4 = &level;
    }
    if (l4 == nullptr) {
      std::printf("module %s: recursion ended before level 4\n",
                  result.module_name.c_str());
      continue;
    }
    std::printf("Module %s:\n", result.module_name.c_str());
    Table table({"Distance", "Count", "Normalized", "", "Kept"});
    const double max = static_cast<double>(l4->ranking.max_count());
    for (const auto& [d, count] : l4->ranking.sorted_by_key()) {
      const double norm = max > 0 ? static_cast<double>(count) / max : 0.0;
      const bool kept =
          std::find(l4->found.begin(), l4->found.end(), d) != l4->found.end();
      table.add(d, count, norm, ascii_bar(norm, 1.0, 30),
                kept ? "yes" : "no (noise)");
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  std::printf(
      "Paper: frequent distances are the true neighbour regions; infrequent\n"
      "ones are noise from random (non-data-dependent) failures.\n");
  std::printf("(%zu modules on %zu workers, %.2f s wall)\n",
              sweep.results.size(), sweep.workers, sweep.wall_seconds);
  return 0;
}
