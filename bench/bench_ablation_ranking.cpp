// Ablation: what the §5.2.4 filtering machinery (frequency ranking +
// marginal-victim discard) buys, as the module's random-failure density
// grows.  Without the filters, every noise-induced region is kept and
// recursively subdivided, blowing up the test count and polluting the final
// distance set with phantom neighbours.
#include <cstdio>
#include <string>

#include "common/table.h"
#include "parbor/parbor.h"

using namespace parbor;

namespace {

struct Outcome {
  std::uint64_t tests = 0;
  std::size_t found = 0;
  std::size_t spurious = 0;
  bool complete = false;
};

Outcome run(const dram::ModuleConfig& config, bool filters) {
  dram::Module module(config);
  mc::TestHost host(module);
  core::ParborConfig pcfg;
  pcfg.enable_ranking_filter = filters;
  pcfg.enable_marginal_discard = filters;
  const auto report = core::run_parbor_search_only(host, pcfg);
  const auto truth = module.chip(0).scrambler().abs_distance_set();
  Outcome out;
  out.tests = report.search.tests;
  out.found = report.search.distances.size();
  std::size_t hits = 0;
  for (auto d : report.search.abs_distances()) {
    if (truth.contains(d)) {
      ++hits;
    } else {
      ++out.spurious;
    }
  }
  out.complete = hits == truth.size();
  return out;
}

}  // namespace

int main() {
  std::printf(
      "Ablation: ranking filter + marginal discard (module C1 geometry,\n"
      "scaling the marginal-cell density)\n\n");
  Table table({"Marginal rate x", "Filters", "Search tests",
               "Distances found", "Spurious", "Complete"});
  for (double mult : {1.0, 4.0, 16.0}) {
    auto config = dram::make_module_config(dram::Vendor::kC, 1,
                                           dram::Scale::kSmall);
    config.chip.faults.marginal_cell_rate *= mult;
    for (bool filters : {true, false}) {
      const Outcome o = run(config, filters);
      table.add(mult, filters ? "on" : "off", o.tests, o.found, o.spurious,
                o.complete ? "yes" : "NO");
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nWithout filtering, marginal cells register phantom neighbour\n"
      "regions; each kept region multiplies the next level's test count.\n");
  return 0;
}
