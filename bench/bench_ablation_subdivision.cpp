// Ablation: the recursion's subdivision factor (the paper divides each kept
// region into 8 subregions per level after the initial halving).  Smaller
// factors mean more levels (more aggregate tests when several distances are
// live); larger factors mean fewer, wider levels with more tests each.
#include <cstdio>

#include "common/table.h"
#include "parbor/parbor.h"

using namespace parbor;

int main() {
  std::printf(
      "Ablation: recursion subdivision factor (one module per vendor)\n\n");
  Table table({"Vendor", "Subdivision", "Levels", "Search tests",
               "Distance set matches"});
  for (auto vendor : {dram::Vendor::kA, dram::Vendor::kB, dram::Vendor::kC}) {
    for (std::uint32_t subdivision : {2u, 4u, 8u, 16u}) {
      dram::Module module(
          dram::make_module_config(vendor, 1, dram::Scale::kSmall));
      mc::TestHost host(module);
      core::ParborConfig pcfg;
      pcfg.subdivision = subdivision;
      const auto report = core::run_parbor_search_only(host, pcfg);
      const auto truth = module.chip(0).scrambler().abs_distance_set();
      table.add(dram::vendor_name(vendor), subdivision,
                report.search.levels.size(), report.search.tests,
                report.search.abs_distances() == truth ? "yes" : "NO");
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nThe paper's choice (8) balances level count against tests "
              "per level.\n");
  return 0;
}
